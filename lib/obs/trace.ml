(* Chrome trace-event export and validation.

   [write] serialises the recorded event stream into the JSON object
   format of the Trace Event specification — loadable in about://tracing
   and Perfetto.  Spans become duration pairs ("ph":"B"/"E"), marks
   become instant events ("ph":"i"), and counter totals are appended as
   one "C" event each so they show up as counter tracks.

   [validate] is the schema check the CI job (and `amgen trace-lint`)
   runs over an emitted file: well-formed JSON, the required keys on
   every event, per-(pid, tid) monotonic timestamps, and strictly
   matched, properly nested B/E pairs.  It uses its own minimal JSON
   reader so the library stays dependency-free. *)

(* --- minimal JSON --- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse (s : string) : (json, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt = Fmt.kstr (fun m -> raise (Bad m)) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected %C at offset %d, got %C" c !pos c'
    | None -> fail "expected %C at offset %d, got end of input" c !pos
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string at offset %d" !pos
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> fail "dangling escape at offset %d" !pos
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char b '"'
              | '\\' -> Buffer.add_char b '\\'
              | '/' -> Buffer.add_char b '/'
              | 'b' -> Buffer.add_char b '\b'
              | 'f' -> Buffer.add_char b '\012'
              | 'n' -> Buffer.add_char b '\n'
              | 'r' -> Buffer.add_char b '\r'
              | 't' -> Buffer.add_char b '\t'
              | 'u' ->
                  if !pos + 4 > n then fail "truncated \\u escape";
                  let hex = String.sub s !pos 4 in
                  let code =
                    try int_of_string ("0x" ^ hex)
                    with _ -> fail "bad \\u escape %S" hex
                  in
                  pos := !pos + 4;
                  (* Non-ASCII escapes are preserved approximately; the
                     validator only needs ASCII names. *)
                  if code < 0x80 then Buffer.add_char b (Char.chr code)
                  else Buffer.add_char b '?'
              | c -> fail "bad escape \\%C" c);
              go ())
      | Some c ->
          advance ();
          Buffer.add_char b c;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    match float_of_string_opt lit with
    | Some f -> Num f
    | None -> fail "bad number %S at offset %d" lit start
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (
          advance ();
          Obj [])
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}' at offset %d" !pos
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (
          advance ();
          Arr [])
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']' at offset %d" !pos
          in
          Arr (elements [])
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
    else Ok v
  with Bad m -> Error m

(* --- writer --- *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let us ts = ts *. 1.0e6

let events_to_string ?(metadata = []) ?(counters = []) evs =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char b ',';
    Buffer.add_string b "\n  "
  in
  let common ~name ~ph ~tid ~ts =
    Buffer.add_string b "{\"name\":\"";
    escape b name;
    Buffer.add_string b (Printf.sprintf "\",\"cat\":\"amg\",\"ph\":\"%s\"" ph);
    Buffer.add_string b (Printf.sprintf ",\"ts\":%.3f,\"pid\":0,\"tid\":%d" (us ts) tid)
  in
  let last_ts = ref 0. in
  List.iter
    (fun ev ->
      sep ();
      (match ev with
      | Obs.Begin { name; tid; ts } ->
          last_ts := Float.max !last_ts ts;
          common ~name ~ph:"B" ~tid ~ts;
          Buffer.add_char b '}'
      | Obs.End { name; tid; ts } ->
          last_ts := Float.max !last_ts ts;
          common ~name ~ph:"E" ~tid ~ts;
          Buffer.add_char b '}'
      | Obs.Mark { name; tid; ts; args } ->
          last_ts := Float.max !last_ts ts;
          common ~name ~ph:"i" ~tid ~ts;
          Buffer.add_string b ",\"s\":\"t\",\"args\":{";
          List.iteri
            (fun i (k, v) ->
              if i > 0 then Buffer.add_char b ',';
              Buffer.add_char b '"';
              escape b k;
              Buffer.add_string b "\":\"";
              escape b v;
              Buffer.add_char b '"')
            args;
          Buffer.add_string b "}}"))
    evs;
  (* Counter totals as one "C" sample each, on the root thread at the
     final timestamp, so Perfetto shows them as counter tracks. *)
  List.iter
    (fun (name, v) ->
      sep ();
      common ~name ~ph:"C" ~tid:0 ~ts:!last_ts;
      Buffer.add_string b (Printf.sprintf ",\"args\":{\"value\":%d}}" v))
    counters;
  Buffer.add_string b "\n]";
  if metadata <> [] then begin
    Buffer.add_string b ",\"metadata\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        escape b k;
        Buffer.add_string b "\":\"";
        escape b v;
        Buffer.add_char b '"')
      metadata;
    Buffer.add_char b '}'
  end;
  Buffer.add_string b "}\n";
  Buffer.contents b

let to_string () =
  events_to_string ~counters:(Obs.counters ()) (Obs.events ())

let write_string path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

let write path = write_string path (to_string ())

let write_events ?metadata ?counters path evs =
  write_string path (events_to_string ?metadata ?counters evs)

(* --- validator --- *)

type summary = {
  v_events : int;
  v_threads : int;
  v_spans : int;
  v_marks : int;
  v_request_id : string option;
}

let field name = function
  | Obj kvs -> List.assoc_opt name kvs
  | _ -> None

(* Per-request traces exported by the serve daemon carry a top-level
   "metadata" object; when present it must identify the request.  Whole-
   run traces have no metadata object and stay valid unchanged. *)
let check_metadata (j : json) : (string option, string) result =
  match j with
  | Obj _ -> (
      match field "metadata" j with
      | None -> Ok None
      | Some (Obj kvs) -> (
          match List.assoc_opt "request_id" kvs with
          | Some (Str s) when s <> "" -> Ok (Some s)
          | Some (Str _) -> Error "metadata.request_id is empty"
          | Some _ -> Error "metadata.request_id is not a string"
          | None -> Error "metadata object lacks \"request_id\"")
      | Some _ -> Error "\"metadata\" is not an object")
  | _ -> Ok None

let validate (j : json) : (summary, string) result =
  let events =
    match j with
    | Obj _ -> (
        match field "traceEvents" j with
        | Some (Arr evs) -> Ok evs
        | Some _ -> Error "\"traceEvents\" is not an array"
        | None -> Error "missing \"traceEvents\" key")
    | Arr evs -> Ok evs (* the spec's bare array format *)
    | _ -> Error "top level is neither an object nor an array"
  in
  match (events, check_metadata j) with
  | (Error _ as e), _ -> e
  | _, Error e -> Error e
  | Ok evs, Ok request_id -> (
      (* Per-(pid, tid) state: last ts and the open B stack. *)
      let threads : (int * int, float ref * string list ref) Hashtbl.t =
        Hashtbl.create 8
      in
      let spans = ref 0 and marks = ref 0 in
      let check i ev =
        let str k =
          match field k ev with
          | Some (Str s) -> Ok s
          | _ -> Error (Printf.sprintf "event %d: missing string %S" i k)
        in
        let num k =
          match field k ev with
          | Some (Num f) -> Ok f
          | _ -> Error (Printf.sprintf "event %d: missing number %S" i k)
        in
        let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
        let* name = str "name" in
        let* ph = str "ph" in
        let* ts = num "ts" in
        let* pid = num "pid" in
        let* tid = num "tid" in
        let key = (int_of_float pid, int_of_float tid) in
        let last, stack =
          match Hashtbl.find_opt threads key with
          | Some st -> st
          | None ->
              let st = (ref neg_infinity, ref []) in
              Hashtbl.replace threads key st;
              st
        in
        if ts < !last then
          Error
            (Printf.sprintf
               "event %d (%s): ts %.3f goes backwards on pid %d tid %d (last %.3f)"
               i name ts (fst key) (snd key) !last)
        else begin
          last := ts;
          match ph with
          | "B" ->
              stack := name :: !stack;
              Ok ()
          | "E" -> (
              match !stack with
              | [] ->
                  Error
                    (Printf.sprintf "event %d: E %S without matching B on tid %d"
                       i name (snd key))
              | top :: rest ->
                  if String.equal top name then begin
                    stack := rest;
                    incr spans;
                    Ok ()
                  end
                  else
                    Error
                      (Printf.sprintf
                         "event %d: E %S does not match open B %S on tid %d" i
                         name top (snd key)))
          | "i" | "I" ->
              incr marks;
              Ok ()
          | "C" | "M" | "X" -> Ok ()
          | ph -> Error (Printf.sprintf "event %d: unknown phase %S" i ph)
        end
      in
      let rec go i = function
        | [] -> Ok ()
        | ev :: rest -> (
            match check i ev with Ok () -> go (i + 1) rest | Error _ as e -> e)
      in
      match go 0 evs with
      | Error _ as e -> e
      | Ok () ->
          let unmatched =
            Hashtbl.fold
              (fun (_, tid) (_, stack) acc ->
                match !stack with
                | [] -> acc
                | name :: _ -> Printf.sprintf "tid %d: B %S left open" tid name :: acc)
              threads []
          in
          if unmatched <> [] then Error (String.concat "; " (List.sort compare unmatched))
          else
            Ok
              {
                v_events = List.length evs;
                v_threads = Hashtbl.length threads;
                v_spans = !spans;
                v_marks = !marks;
                v_request_id = request_id;
              })

let validate_string s =
  match parse s with Error e -> Error ("not valid JSON: " ^ e) | Ok j -> validate j

let validate_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  validate_string s
