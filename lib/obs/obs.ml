(* Structured tracing and counters for the generator pipeline.

   The library is a passive probe layer: code under measurement calls
   [span]/[count]/[sample]/[mark], and every probe first reads one atomic
   flag — with instrumentation disabled (the default) a probe is a load
   and a branch, so the hot paths of the compactor and the spatial index
   pay nothing.  Enabling records into *strands*.

   A strand is a private event buffer plus counter/sample tables, owned
   by exactly one executing task at a time, so recording never takes a
   lock.  The calling domain's current strand lives in domain-local
   storage; the root strand (tid 0) is installed by [enable].  The domain
   pool forks one strand per task slot ([fork]), routes each task's
   probes to its slot strand ([enter]) and merges the slots back into the
   caller's strand in slot order ([join]).  Because fork order, slot
   order and each task's own event order are all deterministic, the
   merged event stream — names, kinds, tids, counter totals — is
   identical for every domain count; only the timestamps vary.

   Timestamps are wall-clock seconds relative to [enable], clamped
   per-strand to be non-decreasing, so every (pid, tid) event sequence in
   an exported Chrome trace has monotonic ts. *)

type event =
  | Begin of { name : string; tid : int; ts : float }
  | End of { name : string; tid : int; ts : float }
  | Mark of { name : string; tid : int; ts : float; args : (string * string) list }

type sample_stat = {
  s_count : int;
  s_min : float;
  s_max : float;
  s_sum : float;
}

type span_stat = {
  calls : int;
  total_s : float; (* inclusive wall time *)
}

type strand = {
  tid : int;
  mutable events : event list; (* newest first *)
  mutable n_events : int;      (* length of [events] *)
  mutable balance : int;       (* unmatched Begins in [events] *)
  mutable last_ts : float;     (* per-strand monotonic clamp *)
  counts : (string, int ref) Hashtbl.t;
  samples : (string, sample_acc) Hashtbl.t;
}

and sample_acc = {
  mutable a_count : int;
  mutable a_min : float;
  mutable a_max : float;
  mutable a_sum : float;
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag

(* Origin of the relative clock; meaningless while disabled. *)
let t0 = Atomic.make 0.

(* Strand ids.  The root is 0; [fork] hands out fresh ids.  Forks only
   ever happen on the (single) submitting strand, sequentially, so the
   assignment is deterministic. *)
let next_tid = Atomic.make 1

let new_strand tid =
  {
    tid;
    events = [];
    n_events = 0;
    balance = 0;
    last_ts = 0.;
    counts = Hashtbl.create 16;
    samples = Hashtbl.create 8;
  }

(* --- event retention ---------------------------------------------------

   A long-running daemon with instrumentation armed would otherwise
   accumulate events without bound (counters and samples are fixed-size
   aggregates; the event list is not).  [set_max_events (Some cap)]
   bounds each strand: when a strand reaches 2*cap events it is
   truncated back to the newest cap, amortising the O(cap) rebuild over
   cap pushes.  Truncation walks the kept window oldest-to-newest and
   also drops End events whose Begin fell off, so the retained stream
   still validates as properly nested.  Dropped events are tallied in a
   process-wide counter ([dropped_events]), reset by [enable]. *)

let max_events : int option Atomic.t = Atomic.make None
let dropped : int Atomic.t = Atomic.make 0
let set_max_events cap = Atomic.set max_events cap
let dropped_events () = Atomic.get dropped

let truncate_strand s cap =
  let arr = Array.of_list s.events in
  (* newest first *)
  let keep = min cap (Array.length arr) in
  let n_dropped = ref (Array.length arr - keep) in
  let out = ref [] and n_out = ref 0 and depth = ref 0 in
  for i = keep - 1 downto 0 do
    (* oldest kept -> newest *)
    match arr.(i) with
    | Begin _ as e ->
        incr depth;
        out := e :: !out;
        incr n_out
    | End _ as e ->
        if !depth > 0 then begin
          decr depth;
          out := e :: !out;
          incr n_out
        end
        else incr n_dropped (* its Begin was dropped *)
    | Mark _ as e ->
        out := e :: !out;
        incr n_out
  done;
  s.events <- !out;
  s.n_events <- !n_out;
  s.balance <- !depth;
  if !n_dropped > 0 then ignore (Atomic.fetch_and_add dropped !n_dropped)

let push s ev =
  match ev with
  | End _ when s.balance = 0 ->
      (* The matching Begin was truncated away; keeping this End would
         make the retained stream fail B/E validation. *)
      ignore (Atomic.fetch_and_add dropped 1)
  | _ ->
      (match ev with
      | Begin _ -> s.balance <- s.balance + 1
      | End _ -> s.balance <- s.balance - 1
      | Mark _ -> ());
      s.events <- ev :: s.events;
      s.n_events <- s.n_events + 1;
      (match Atomic.get max_events with
      | Some cap when s.n_events >= 2 * cap -> truncate_strand s cap
      | _ -> ())

let root : strand option Atomic.t = Atomic.make None

(* The current strand of the calling domain.  Workers outside an [enter]
   window have no strand and their probes are dropped — by construction
   the pool wraps every task, so nothing is ever dropped in practice. *)
let current_key : strand option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current () = !(Domain.DLS.get current_key)

let now (s : strand) =
  let t = Unix.gettimeofday () -. Atomic.get t0 in
  let t = if t < s.last_ts then s.last_ts else t in
  s.last_ts <- t;
  t

(* --- lifecycle --- *)

let reset () =
  Atomic.set root None;
  Atomic.set next_tid 1;
  Domain.DLS.get current_key := None

let enable () =
  reset ();
  Atomic.set dropped 0;
  Atomic.set t0 (Unix.gettimeofday ());
  let s = new_strand 0 in
  Atomic.set root (Some s);
  Domain.DLS.get current_key := Some s;
  Atomic.set enabled_flag true

let disable () = Atomic.set enabled_flag false

(* --- probes --- *)

let count name n =
  if Atomic.get enabled_flag then
    match current () with
    | None -> ()
    | Some s -> (
        match Hashtbl.find_opt s.counts name with
        | Some r -> r := !r + n
        | None -> Hashtbl.replace s.counts name (ref n))

let sample name v =
  if Atomic.get enabled_flag then
    match current () with
    | None -> ()
    | Some s -> (
        match Hashtbl.find_opt s.samples name with
        | Some a ->
            a.a_count <- a.a_count + 1;
            a.a_sum <- a.a_sum +. v;
            if v < a.a_min then a.a_min <- v;
            if v > a.a_max then a.a_max <- v
        | None ->
            Hashtbl.replace s.samples name
              { a_count = 1; a_min = v; a_max = v; a_sum = v })

let mark name args =
  if Atomic.get enabled_flag then
    match current () with
    | None -> ()
    | Some s -> push s (Mark { name; tid = s.tid; ts = now s; args })

let markf name f =
  if Atomic.get enabled_flag then
    match current () with
    | None -> ()
    | Some s -> push s (Mark { name; tid = s.tid; ts = now s; args = f () })

let span name f =
  if not (Atomic.get enabled_flag) then f ()
  else
    match current () with
    | None -> f ()
    | Some s ->
        push s (Begin { name; tid = s.tid; ts = now s });
        let finish () =
          (* Exception-safe: the strand may have changed is impossible —
             [enter]/[exit] pair around whole tasks — so close on [s]. *)
          push s (End { name; tid = s.tid; ts = now s })
        in
        (match f () with
        | v ->
            finish ();
            v
        | exception e ->
            finish ();
            raise e)

(* --- pool integration --- *)

type strands = Off | On of strand array

let recording = function Off -> false | On _ -> true

let fork n =
  if not (Atomic.get enabled_flag) then Off
  else begin
    let base = Atomic.fetch_and_add next_tid n in
    On (Array.init n (fun i -> new_strand (base + i)))
  end

let enter strands i f =
  match strands with
  | Off -> f ()
  | On arr ->
      let cell = Domain.DLS.get current_key in
      let saved = !cell in
      cell := Some arr.(i);
      let restore () = cell := saved in
      (match f () with
      | v ->
          restore ();
          v
      | exception e ->
          restore ();
          raise e)

let merge_into (dst : strand) (src : strand) =
  dst.events <- List.rev_append (List.rev src.events) dst.events;
  dst.n_events <- dst.n_events + src.n_events;
  dst.balance <- dst.balance + src.balance;
  (match Atomic.get max_events with
  | Some cap when dst.n_events >= 2 * cap -> truncate_strand dst cap
  | _ -> ());
  Hashtbl.iter
    (fun name r ->
      match Hashtbl.find_opt dst.counts name with
      | Some d -> d := !d + !r
      | None -> Hashtbl.replace dst.counts name (ref !r))
    src.counts;
  Hashtbl.iter
    (fun name a ->
      match Hashtbl.find_opt dst.samples name with
      | Some d ->
          d.a_count <- d.a_count + a.a_count;
          d.a_sum <- d.a_sum +. a.a_sum;
          if a.a_min < d.a_min then d.a_min <- a.a_min;
          if a.a_max > d.a_max then d.a_max <- a.a_max
      | None ->
          Hashtbl.replace dst.samples name
            { a_count = a.a_count; a_min = a.a_min; a_max = a.a_max; a_sum = a.a_sum })
    src.samples

let join strands =
  match strands with
  | Off -> ()
  | On arr -> (
      match current () with
      | None -> ()
      | Some dst -> Array.iter (merge_into dst) arr)

(* --- reporting (read on the root strand, after every join) --- *)

let root_strand () = Atomic.get root

let events () =
  match root_strand () with None -> [] | Some s -> List.rev s.events

let counters () =
  match root_strand () with
  | None -> []
  | Some s ->
      Hashtbl.fold (fun name r acc -> (name, !r) :: acc) s.counts []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counter name =
  match root_strand () with
  | None -> 0
  | Some s -> ( match Hashtbl.find_opt s.counts name with Some r -> !r | None -> 0)

let samples () =
  match root_strand () with
  | None -> []
  | Some s ->
      Hashtbl.fold
        (fun name a acc ->
          ( name,
            { s_count = a.a_count; s_min = a.a_min; s_max = a.a_max; s_sum = a.a_sum }
          )
          :: acc)
        s.samples []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let marks () =
  List.filter_map
    (function Mark { name; args; _ } -> Some (name, args) | _ -> None)
    (events ())

(* --- windows -----------------------------------------------------------

   A window captures the calling strand's current position in its event
   list (the head cons cell); [window_events] later returns just the
   events recorded since, oldest first.  The serve daemon opens one per
   request to export request-scoped traces.  If retention truncation
   rebuilt the list in between, the captured cell is gone and the walk
   falls off the end — the slice then degrades to the whole retained
   buffer, which is still a valid (if over-wide) trace. *)

type window = { w_strand : strand option; w_tail : event list }

let window () =
  match current () with
  | None -> { w_strand = None; w_tail = [] }
  | Some s -> { w_strand = Some s; w_tail = s.events }

let window_events w =
  match w.w_strand with
  | None -> []
  | Some s ->
      let rec take acc l =
        if l == w.w_tail then acc
        else match l with [] -> acc | e :: rest -> take (e :: acc) rest
      in
      take [] s.events

(* Aggregate span durations from the merged B/E stream: a stack per tid
   matches each End with its Begin. *)
let spans () =
  let stacks : (int, (string * float) list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack tid =
    match Hashtbl.find_opt stacks tid with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.replace stacks tid r;
        r
  in
  let agg : (string, span_stat) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (function
      | Begin { name; tid; ts } ->
          let st = stack tid in
          st := (name, ts) :: !st
      | End { tid; ts; _ } -> (
          let st = stack tid in
          match !st with
          | [] -> () (* unbalanced: ignore, the validator reports it *)
          | (name, t_begin) :: rest ->
              st := rest;
              let dt = ts -. t_begin in
              let cur =
                Option.value ~default:{ calls = 0; total_s = 0. }
                  (Hashtbl.find_opt agg name)
              in
              Hashtbl.replace agg name
                { calls = cur.calls + 1; total_s = cur.total_s +. dt })
      | Mark _ -> ())
    (events ());
  Hashtbl.fold (fun name st acc -> (name, st) :: acc) agg []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp_stats ppf () =
  let cs = counters () and ss = samples () and sp = spans () in
  if cs = [] && ss = [] && sp = [] then Fmt.pf ppf "no instrumentation recorded@."
  else begin
    if sp <> [] then begin
      Fmt.pf ppf "@.spans (inclusive wall time)@.";
      Fmt.pf ppf "  %-36s %10s %12s %12s@." "name" "calls" "total/ms" "mean/ms";
      List.iter
        (fun (name, { calls; total_s }) ->
          Fmt.pf ppf "  %-36s %10d %12.3f %12.4f@." name calls (total_s *. 1000.)
            (total_s *. 1000. /. float_of_int (max 1 calls)))
        sp
    end;
    if cs <> [] then begin
      Fmt.pf ppf "@.counters@.";
      List.iter (fun (name, v) -> Fmt.pf ppf "  %-36s %12d@." name v) cs
    end;
    if ss <> [] then begin
      Fmt.pf ppf "@.histograms@.";
      Fmt.pf ppf "  %-36s %10s %10s %10s %10s@." "name" "n" "min" "mean" "max";
      List.iter
        (fun (name, { s_count; s_min; s_max; s_sum }) ->
          Fmt.pf ppf "  %-36s %10d %10.1f %10.2f %10.1f@." name s_count s_min
            (s_sum /. float_of_int (max 1 s_count))
            s_max)
        ss
    end
  end
