(* Process-wide metrics registry: counters, gauges, histograms.

   Every instrument is backed by atomics so updates are lock-free and
   safe from any thread or domain — the serve daemon bumps request
   counters from connection threads while scrape handlers read them
   concurrently.  The registry table itself is guarded by one mutex,
   taken only on registration (first lookup of a name + label set) and
   while listing instruments for a snapshot; never while updating.

   Snapshot order is (name, sorted labels), so equal registry states
   serialise to byte-equal expositions — the serve determinism drill
   relies on this. *)

type labels = (string * string) list

type hist = {
  bounds : float array;          (* strictly increasing upper bounds *)
  counts : int Atomic.t array;   (* one per bound + overflow slot *)
  sum : float Atomic.t;
}

type counter = int Atomic.t
type gauge = int Atomic.t
type fgauge = float Atomic.t
type histogram = hist

type instr =
  | I_counter of counter
  | I_counter_fn of (unit -> int) ref
  | I_gauge of gauge
  | I_fgauge of fgauge
  | I_gauge_fn of (unit -> float) ref
  | I_hist of hist

let registry : (string * labels, instr) Hashtbl.t = Hashtbl.create 64
let reg_lock = Mutex.create ()

let canon_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let with_lock f =
  Mutex.lock reg_lock;
  match f () with
  | v ->
      Mutex.unlock reg_lock;
      v
  | exception e ->
      Mutex.unlock reg_lock;
      raise e

let kind_name = function
  | I_counter _ | I_counter_fn _ -> "counter"
  | I_gauge _ | I_fgauge _ | I_gauge_fn _ -> "gauge"
  | I_hist _ -> "histogram"

(* Find-or-register under the lock.  [make] builds the instrument;
   [pick] projects the stored one back to the typed handle and is also
   the kind check: registering the same name + labels as a different
   kind is a programming error. *)
let intern name labels make pick =
  let key = (name, canon_labels labels) in
  with_lock @@ fun () ->
  match Hashtbl.find_opt registry key with
  | Some i -> (
      match pick i with
      | Some h -> h
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S already registered as a %s" name
               (kind_name i)))
  | None ->
      let i = make () in
      Hashtbl.replace registry key i;
      match pick i with Some h -> h | None -> assert false

let counter ?(labels = []) name =
  intern name labels
    (fun () -> I_counter (Atomic.make 0))
    (function I_counter c -> Some c | _ -> None)

let incr c = ignore (Atomic.fetch_and_add c 1)
let add c n = if n > 0 then ignore (Atomic.fetch_and_add c n)
let counter_value c = Atomic.get c

(* Callback instruments replace on re-registration: a restarted server
   re-points the callbacks at its fresh state instead of leaving stale
   closures over a stopped instance. *)
let counter_fn ?(labels = []) name f =
  let cell =
    intern name labels
      (fun () -> I_counter_fn (ref f))
      (function I_counter_fn r -> Some r | _ -> None)
  in
  cell := f

let gauge ?(labels = []) name =
  intern name labels
    (fun () -> I_gauge (Atomic.make 0))
    (function I_gauge g -> Some g | _ -> None)

let set g v = Atomic.set g v
let gauge_value g = Atomic.get g

let fgauge ?(labels = []) name =
  intern name labels
    (fun () -> I_fgauge (Atomic.make 0.))
    (function I_fgauge g -> Some g | _ -> None)

let set_f g v = Atomic.set g v

let gauge_fn ?(labels = []) name f =
  let cell =
    intern name labels
      (fun () -> I_gauge_fn (ref f))
      (function I_gauge_fn r -> Some r | _ -> None)
  in
  cell := f

(* --- histograms --- *)

(* 0.25 ms .. ~524 s, factor 2 per bucket: 22 bounds, resolving the
   whole serving range from memo hits (sub-ms) to cold searches
   (seconds) within a factor-2 bucket width. *)
let default_latency_bounds =
  Array.init 22 (fun i -> 0.00025 *. Float.of_int (1 lsl i))

let histogram ?(labels = []) ?(bounds = default_latency_bounds) name =
  if Array.length bounds = 0 then invalid_arg "Metrics.histogram: empty bounds";
  Array.iteri
    (fun i b ->
      if i > 0 && b <= bounds.(i - 1) then
        invalid_arg "Metrics.histogram: bounds not strictly increasing")
    bounds;
  intern name labels
    (fun () ->
      I_hist
        {
          bounds = Array.copy bounds;
          counts = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
          sum = Atomic.make 0.;
        })
    (function I_hist h -> Some h | _ -> None)

let rec atomic_add_float a x =
  let old = Atomic.get a in
  if not (Atomic.compare_and_set a old (old +. x)) then atomic_add_float a x

let bucket_of bounds v =
  let n = Array.length bounds in
  let i = ref 0 in
  while !i < n && v > bounds.(!i) do
    Stdlib.incr i
  done;
  !i (* = n for the overflow bucket *)

let observe h v =
  ignore (Atomic.fetch_and_add h.counts.(bucket_of h.bounds v) 1);
  atomic_add_float h.sum v

type hsnap = {
  h_bounds : float array;
  h_counts : int array;
  h_count : int;
  h_sum : float;
}

let hist_snap h =
  let counts = Array.map Atomic.get h.counts in
  {
    h_bounds = h.bounds;
    h_counts = counts;
    h_count = Array.fold_left ( + ) 0 counts;
    h_sum = Atomic.get h.sum;
  }

let quantile s q =
  if s.h_count = 0 then 0.
  else begin
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int s.h_count))) in
    let rank = min rank s.h_count in
    let nb = Array.length s.h_bounds in
    let rec go i cum =
      if i >= nb then infinity
      else
        let cum = cum + s.h_counts.(i) in
        if cum >= rank then s.h_bounds.(i) else go (i + 1) cum
    in
    go 0 0
  end

(* --- snapshot --- *)

type value = Counter of int | Gauge of float | Histogram of hsnap
type sample = { m_name : string; m_labels : labels; m_value : value }

(* A raising or absent callback reads as 0: a scrape must never fail
   because one subsystem's probe did. *)
let call0 f ~default ~conv = match f () with v -> conv v | exception _ -> default

let snapshot () =
  let instrs =
    with_lock @@ fun () ->
    Hashtbl.fold (fun k i acc -> (k, i) :: acc) registry []
  in
  let instrs =
    List.sort
      (fun ((n1, l1), _) ((n2, l2), _) ->
        match String.compare n1 n2 with 0 -> compare l1 l2 | c -> c)
      instrs
  in
  List.map
    (fun ((name, labels), i) ->
      let value =
        match i with
        | I_counter c -> Counter (Atomic.get c)
        | I_counter_fn r -> Counter (call0 !r ~default:0 ~conv:(fun v -> v))
        | I_gauge g -> Gauge (float_of_int (Atomic.get g))
        | I_fgauge g -> Gauge (Atomic.get g)
        | I_gauge_fn r -> Gauge (call0 !r ~default:0. ~conv:(fun v -> v))
        | I_hist h -> Histogram (hist_snap h)
      in
      { m_name = name; m_labels = labels; m_value = value })
    instrs

let reset () =
  with_lock @@ fun () ->
  Hashtbl.iter
    (fun _ i ->
      match i with
      | I_counter c | I_gauge c -> Atomic.set c 0
      | I_fgauge g -> Atomic.set g 0.
      | I_counter_fn _ | I_gauge_fn _ -> ()
      | I_hist h ->
          Array.iter (fun c -> Atomic.set c 0) h.counts;
          Atomic.set h.sum 0.)
    registry

(* --- Prometheus text exposition --- *)

let sanitize name =
  String.map
    (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_') as c -> c | _ -> '_')
    name

let escape_label b s =
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s

(* Shortest decimal that round-trips; integral values print without a
   fractional part so counters stay readable. *)
let pp_num b f =
  if Float.is_nan f then Buffer.add_string b "NaN"
  else if f = infinity then Buffer.add_string b "+Inf"
  else if f = neg_infinity then Buffer.add_string b "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" f)
  else
    let s = Printf.sprintf "%.12g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    Buffer.add_string b s

let pp_labels b = function
  | [] -> ()
  | labels ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (sanitize k);
          Buffer.add_string b "=\"";
          escape_label b v;
          Buffer.add_char b '"')
        labels;
      Buffer.add_char b '}'

let to_prometheus () =
  let b = Buffer.create 2048 in
  let last_type = ref "" in
  let type_line name kind =
    if !last_type <> name ^ kind then begin
      last_type := name ^ kind;
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun { m_name; m_labels; m_value } ->
      let base = sanitize m_name in
      match m_value with
      | Counter v ->
          let name = base ^ "_total" in
          type_line name "counter";
          Buffer.add_string b name;
          pp_labels b m_labels;
          Buffer.add_char b ' ';
          pp_num b (float_of_int v);
          Buffer.add_char b '\n'
      | Gauge v ->
          type_line base "gauge";
          Buffer.add_string b base;
          pp_labels b m_labels;
          Buffer.add_char b ' ';
          pp_num b v;
          Buffer.add_char b '\n'
      | Histogram h ->
          type_line base "histogram";
          let cum = ref 0 in
          let bucket le n =
            Buffer.add_string b (base ^ "_bucket");
            let lb = Buffer.create 16 in
            pp_num lb le;
            pp_labels b (m_labels @ [ ("le", Buffer.contents lb) ]);
            Buffer.add_char b ' ';
            pp_num b (float_of_int n);
            Buffer.add_char b '\n'
          in
          Array.iteri
            (fun i bound ->
              cum := !cum + h.h_counts.(i);
              bucket bound !cum)
            h.h_bounds;
          bucket infinity h.h_count;
          Buffer.add_string b (base ^ "_sum");
          pp_labels b m_labels;
          Buffer.add_char b ' ';
          pp_num b h.h_sum;
          Buffer.add_char b '\n';
          Buffer.add_string b (base ^ "_count");
          pp_labels b m_labels;
          Buffer.add_char b ' ';
          pp_num b (float_of_int h.h_count);
          Buffer.add_char b '\n')
    (snapshot ());
  Buffer.contents b
