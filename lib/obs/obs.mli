(* Structured tracing, counters and histograms for the generator
   pipeline, with a no-op default so instrumented hot paths cost nothing
   when disabled (one atomic load and a branch per probe).

   Concurrency contract: recording is strand-local and lock-free.  The
   calling domain's current strand lives in domain-local storage; the
   domain pool gives every task slot its own strand ([fork]/[enter]) and
   merges the slots back into the submitting strand in slot order
   ([join]).  The merged stream — event names, kinds, tids, counter and
   sample totals — is therefore identical for every domain count; only
   timestamps vary between runs. *)

type event =
  | Begin of { name : string; tid : int; ts : float }
      (** Span opened; [ts] is seconds since {!enable}, non-decreasing
          within a tid. *)
  | End of { name : string; tid : int; ts : float }
  | Mark of { name : string; tid : int; ts : float; args : (string * string) list }
      (** Instant event with structured arguments (e.g. the compactor's
          per-placement binding-constraint record). *)

(** {1 Lifecycle} *)

val enabled : unit -> bool
val enable : unit -> unit
(** Reset all recorded data and start recording on a fresh root strand
    (tid 0) owned by the calling domain. *)

val disable : unit -> unit
(** Stop recording; the data stays readable until {!reset}/{!enable}. *)

val reset : unit -> unit

(** {1 Probes} — no-ops while disabled. *)

val count : string -> int -> unit
val sample : string -> float -> unit
val span : string -> (unit -> 'a) -> 'a
(** Exception-safe: the [End] event is emitted on raise too. *)

val mark : string -> (string * string) list -> unit
val markf : string -> (unit -> (string * string) list) -> unit
(** Like {!mark} but the argument list is only built when enabled. *)

(** {1 Event retention} — bound a long-running process.

    Counter and sample tables are fixed-size aggregates, but the event
    list grows with every span/mark; a daemon that never disables
    instrumentation would accumulate without bound. *)

val set_max_events : int option -> unit
(** Cap each strand's retained events (default: no cap).  A strand
    reaching twice the cap is truncated back to the newest [cap] events
    (amortised O(1) per push); [End] events whose [Begin] fell off are
    dropped too, so the retained stream still validates as properly
    nested B/E pairs.  Counters and samples stay exact. *)

val dropped_events : unit -> int
(** Total events discarded by retention truncation since {!enable}. *)

(** {1 Pool integration} *)

type strands

val fork : int -> strands
(** Allocate one strand per task slot with deterministic fresh tids
    (a cheap token when disabled).  Must be called from the submitting
    strand, never from inside a task. *)

val recording : strands -> bool
(** Whether the strands were forked while recording — [false] means
    {!enter}/{!join} are no-ops, so a hot loop may skip building the
    per-task closures entirely. *)

val enter : strands -> int -> (unit -> 'a) -> 'a
(** Route the calling domain's probes to slot [i]'s strand for the
    duration of [f]. *)

val join : strands -> unit
(** Append every slot strand's events into the calling strand in slot
    order and fold the counter/sample tables in.  Call once, after all
    tasks completed. *)

(** {1 Reporting} — read the root strand; call after every [join]. *)

type sample_stat = { s_count : int; s_min : float; s_max : float; s_sum : float }
type span_stat = { calls : int; total_s : float }

val events : unit -> event list
(** Merged event stream in deterministic order. *)

val counters : unit -> (string * int) list
(** Sorted by name. *)

val counter : string -> int
(** 0 when absent. *)

val samples : unit -> (string * sample_stat) list
val spans : unit -> (string * span_stat) list
val marks : unit -> (string * (string * string) list) list
(** Mark events in recorded order. *)

(** {1 Windows} — request-scoped event slices. *)

type window

val window : unit -> window
(** Capture the calling strand's current event position. *)

val window_events : window -> event list
(** The events the capturing strand recorded since {!window} (including
    slot strands merged by {!join} in between), oldest first.  Returns
    the whole retained buffer if retention truncation discarded the
    captured position, and [[]] when recording was off at capture. *)

val pp_stats : Format.formatter -> unit -> unit
(** The [--stats] summary table: spans, counters, histograms. *)
