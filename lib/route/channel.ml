(* Detailed channel router: constrained left-edge (Hashimoto–Stevens).

   A channel has pins along its top and bottom edges (a net name per
   column, or nothing).  Each net gets one horizontal trunk on a metal1
   track; vertical metal2 branches drop from the pins to the trunk through
   vias.  Two constraints govern track assignment:

   - horizontal: nets whose column intervals overlap need different
     tracks (the left-edge packing shares one track between disjoint
     intervals — this is what the global comb router does not do);
   - vertical: where a column has both a top and a bottom pin, the top
     net's trunk must lie above the bottom net's trunk or their branches
     would collide (the vertical constraint graph; cyclic VCGs need
     doglegs and are rejected here).

   The router reports its track count, which is optimal for cycle-free
   channels up to the VCG's chain structure (never below the channel
   density). *)

module Rect = Amg_geometry.Rect
module Rules = Amg_tech.Rules
module Lobj = Amg_layout.Lobj
module Env = Amg_core.Env
module Diag = Amg_robust.Diag

(* Routing failures are structured diagnostics (subsystem [Route]); the
   message texts are part of the test surface, the codes and hints are the
   machine-readable layer on top. *)
let unroutable ?hint code fmt = Diag.failf ?hint Diag.Route ~code fmt

type spec = {
  top : (int * string) list;     (* x position, net *)
  bottom : (int * string) list;
}

type result = {
  tracks : (string * int) list;  (* net -> track index, 0 = topmost *)
  track_count : int;
  density : int;
  height : int;                  (* channel height in nm *)
}

let nets_of spec =
  List.map snd (spec.top @ spec.bottom) |> List.sort_uniq String.compare

(* Column interval of each net. *)
let intervals spec =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (x, net) ->
      let lo, hi =
        match Hashtbl.find_opt tbl net with
        | Some (lo, hi) -> (min lo x, max hi x)
        | None -> (x, x)
      in
      Hashtbl.replace tbl net (lo, hi))
    (spec.top @ spec.bottom);
  tbl

(* Channel density: max number of net intervals crossing any column. *)
let density spec =
  let iv = intervals spec in
  let xs = List.map fst (spec.top @ spec.bottom) |> List.sort_uniq compare in
  List.fold_left
    (fun acc x ->
      let crossing =
        Hashtbl.fold
          (fun _net (lo, hi) n -> if lo <= x && x <= hi then n + 1 else n)
          iv 0
      in
      max acc crossing)
    0 xs

(* Vertical constraint graph: top pin net -> bottom pin net per column. *)
let vcg spec =
  let edges = ref [] in
  List.iter
    (fun (x, tnet) ->
      List.iter
        (fun (x', bnet) ->
          if x = x' && not (String.equal tnet bnet) then
            edges := (tnet, bnet) :: !edges)
        spec.bottom)
    spec.top;
  List.sort_uniq compare !edges

let has_cycle nets edges =
  (* Kahn: if we cannot consume every node, there is a cycle. *)
  let indeg = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace indeg n 0) nets;
  List.iter
    (fun (_, b) -> Hashtbl.replace indeg b (Hashtbl.find indeg b + 1))
    edges;
  let rec consume remaining =
    match
      List.find_opt (fun n -> Hashtbl.find indeg n = 0) remaining
    with
    | None -> remaining <> []
    | Some n ->
        List.iter
          (fun (a, b) ->
            if String.equal a n then
              Hashtbl.replace indeg b (Hashtbl.find indeg b - 1))
          edges;
        consume (List.filter (fun m -> not (String.equal m n)) remaining)
  in
  consume nets

(* Constrained left-edge: fill tracks top to bottom; a net is eligible for
   the current track when all its VCG predecessors are already placed and
   its interval overlaps no interval already on the track. *)
let validate spec =
  let clash pins side =
    List.iter
      (fun (x, n) ->
        List.iter
          (fun (x', n') ->
            if x = x' && not (String.equal n n') then
              unroutable "route.pin-clash"
                ~hint:"every column may carry at most one pin per side"
                "two %s pins share column x=%d (%s, %s)" side x n n')
          pins)
      pins
  in
  clash spec.top "top";
  clash spec.bottom "bottom"

let assign spec =
  validate spec;
  let nets = nets_of spec in
  let edges = vcg spec in
  if has_cycle nets edges then
    unroutable "route.unroutable-cyclic"
      ~hint:"route_dogleg splits nets into segments to break VCG cycles"
      "cyclic vertical constraints (needs doglegs)";
  let iv = intervals spec in
  let interval n = Hashtbl.find iv n in
  let placed = Hashtbl.create 16 in
  let ancestors_placed n =
    List.for_all
      (fun (a, b) -> (not (String.equal b n)) || Hashtbl.mem placed a)
      edges
  in
  let overlaps (lo, hi) (lo', hi') = not (hi < lo' || hi' < lo) in
  let track = ref 0 in
  let out = ref [] in
  let remaining = ref nets in
  while !remaining <> [] do
    (* Left-edge order within the track. *)
    let candidates =
      List.filter ancestors_placed !remaining
      |> List.sort (fun a b -> compare (fst (interval a)) (fst (interval b)))
    in
    if candidates = [] then
      unroutable "route.unroutable-blocked"
        "vertical constraints block every remaining net";
    let on_track = ref [] in
    List.iter
      (fun n ->
        if
          List.for_all
            (fun m -> not (overlaps (interval n) (interval m)))
            !on_track
        then on_track := n :: !on_track)
      candidates;
    List.iter
      (fun n ->
        Hashtbl.replace placed n !track;
        out := (n, !track) :: !out)
      !on_track;
    remaining :=
      List.filter (fun n -> not (Hashtbl.mem placed n)) !remaining;
    incr track
  done;
  (List.rev !out, !track)

(* Generate the geometry: trunks on metal1 tracks (top track first),
   branches on metal2 from each pin edge to its trunk, vias at the
   junctions. *)
let route env obj ~spec ~y_top ~y_bottom ~x0 =
  ignore x0;
  let rules = Env.rules env in
  let tracks, track_count = assign spec in
  let m1w = Rules.width rules "metal1" in
  let m2w = Rules.width rules "metal2" in
  let pitch =
    (* Track pitch leaves room for a via pad plus spacing on both metal
       levels: adjacent tracks can carry vias in the same column. *)
    max
      (Wire.pad_size rules ~layer:"metal1" ~cut:"via"
      + Rules.space_exn rules "metal1" "metal1")
      (Wire.pad_size rules ~layer:"metal2" ~cut:"via"
      + Rules.space_exn rules "metal2" "metal2")
  in
  let needed = (track_count * pitch) + (2 * pitch) in
  if y_top - y_bottom < needed then
    unroutable "route.channel-too-short"
      ~hint:"widen the channel or reduce the number of competing nets"
      "channel too short: %d nm for %d tracks (need %d)" (y_top - y_bottom)
      track_count needed;
  let iv = intervals spec in
  let track_y t = y_top - ((t + 1) * pitch) in
  List.iter
    (fun (net, t) ->
      let lo, hi = Hashtbl.find iv net in
      let y = track_y t in
      ignore
        (Lobj.add_shape obj ~layer:"metal1"
           ~rect:
             (Rect.make ~x0:(lo - m1w) ~y0:y ~x1:(hi + m1w) ~y1:(y + m1w))
           ~net ()))
    tracks;
  let branch ~x ~from_y ~net =
    let t = List.assoc net tracks in
    let y = track_y t + (m1w / 2) in
    ignore
      (Lobj.add_shape obj ~layer:"metal2"
         ~rect:
           (Rect.make ~x0:(x - (m2w / 2))
              ~y0:(min y from_y)
              ~x1:(x + (m2w / 2))
              ~y1:(max y from_y))
         ~net ());
    ignore (Wire.via env obj ~at:(x, y) ~net ())
  in
  List.iter (fun (x, net) -> branch ~x ~from_y:y_top ~net) spec.top;
  List.iter (fun (x, net) -> branch ~x ~from_y:y_bottom ~net) spec.bottom;
  {
    tracks;
    track_count;
    density = density spec;
    height = needed;
  }

(* --- restricted doglegs (Deutsch) ------------------------------------- *)

(* Split every net at its internal pin columns: segment i covers the span
   between consecutive pins.  Segments of one net meet at a pin column and
   are connected there by the pin's branch, so they may sit on different
   tracks — this breaks vertical-constraint cycles that pass through
   different spans of a multi-pin net, and lets long nets escape dense
   regions. *)

type seg = { s_net : string; s_idx : int; s_lo : int; s_hi : int }

let seg_name s = Printf.sprintf "%s#%d" s.s_net s.s_idx

let segments spec =
  let pins_of net =
    List.filter_map
      (fun (x, n) -> if String.equal n net then Some x else None)
      (spec.top @ spec.bottom)
    |> List.sort_uniq compare
  in
  let rec consecutive = function
    | a :: (b :: _ as rest) -> (a, b) :: consecutive rest
    | _ -> []
  in
  List.concat_map
    (fun net ->
      match pins_of net with
      | [] -> []
      | [ x ] -> [ { s_net = net; s_idx = 0; s_lo = x; s_hi = x } ]
      | pins ->
          List.mapi
            (fun i (lo, hi) -> { s_net = net; s_idx = i; s_lo = lo; s_hi = hi })
            (consecutive pins))
    (nets_of spec)

let segs_at segs net x =
  List.filter
    (fun s -> String.equal s.s_net net && s.s_lo <= x && x <= s.s_hi)
    segs

(* VCG on segments: at a column with a top pin of [a] and a bottom pin of
   [b], every a-segment incident there must lie above every b-segment. *)
let seg_vcg spec segs =
  let edges = ref [] in
  List.iter
    (fun (x, tnet) ->
      List.iter
        (fun (x', bnet) ->
          if x = x' && not (String.equal tnet bnet) then
            List.iter
              (fun sa ->
                List.iter
                  (fun sb -> edges := (seg_name sa, seg_name sb) :: !edges)
                  (segs_at segs bnet x))
              (segs_at segs tnet x))
        spec.bottom)
    spec.top;
  List.sort_uniq compare !edges

let assign_dogleg spec =
  validate spec;
  let segs = segments spec in
  let names = List.map seg_name segs in
  let edges = seg_vcg spec segs in
  if has_cycle names edges then
    unroutable "route.unroutable-cyclic"
      "cyclic vertical constraints even with doglegs";
  let interval name =
    let s = List.find (fun s -> String.equal (seg_name s) name) segs in
    (s.s_lo, s.s_hi)
  in
  let placed = Hashtbl.create 16 in
  let ancestors_placed n =
    List.for_all
      (fun (a, b) -> (not (String.equal b n)) || Hashtbl.mem placed a)
      edges
  in
  let overlaps (lo, hi) (lo', hi') = not (hi < lo' || hi' < lo) in
  let track = ref 0 in
  let out = ref [] in
  let remaining = ref names in
  while !remaining <> [] do
    let candidates =
      List.filter ancestors_placed !remaining
      |> List.sort (fun a b -> compare (fst (interval a)) (fst (interval b)))
    in
    if candidates = [] then
      unroutable "route.unroutable-blocked"
        "vertical constraints block every remaining segment";
    let on_track = ref [] in
    List.iter
      (fun n ->
        if
          List.for_all
            (fun m -> not (overlaps (interval n) (interval m)))
            !on_track
        then on_track := n :: !on_track)
      candidates;
    List.iter
      (fun n ->
        Hashtbl.replace placed n !track;
        out := (n, !track) :: !out)
      !on_track;
    remaining := List.filter (fun n -> not (Hashtbl.mem placed n)) !remaining;
    incr track
  done;
  (segs, List.rev !out, !track)

(* Geometry with doglegs: one trunk per segment; at each pin column the
   branch spans from the pin's edge to the farthest incident segment track
   and puts a via on every incident trunk. *)
let route_dogleg env obj ~spec ~y_top ~y_bottom ~x0 =
  ignore x0;
  let rules = Env.rules env in
  let segs, tracks, track_count = assign_dogleg spec in
  let m1w = Rules.width rules "metal1" in
  let m2w = Rules.width rules "metal2" in
  let pitch =
    (* Track pitch leaves room for a via pad plus spacing on both metal
       levels: adjacent tracks can carry vias in the same column. *)
    max
      (Wire.pad_size rules ~layer:"metal1" ~cut:"via"
      + Rules.space_exn rules "metal1" "metal1")
      (Wire.pad_size rules ~layer:"metal2" ~cut:"via"
      + Rules.space_exn rules "metal2" "metal2")
  in
  let needed = (track_count * pitch) + (2 * pitch) in
  if y_top - y_bottom < needed then
    unroutable "route.channel-too-short"
      ~hint:"widen the channel or reduce the number of competing nets"
      "channel too short: %d nm for %d tracks (need %d)" (y_top - y_bottom)
      track_count needed;
  let track_y t = y_top - ((t + 1) * pitch) in
  List.iter
    (fun s ->
      let t = List.assoc (seg_name s) tracks in
      let y = track_y t in
      ignore
        (Lobj.add_shape obj ~layer:"metal1"
           ~rect:
             (Rect.make ~x0:(s.s_lo - m1w) ~y0:y ~x1:(s.s_hi + m1w)
                ~y1:(y + m1w))
           ~net:s.s_net ()))
    segs;
  let branch ~x ~from_y ~net =
    let incident = segs_at segs net x in
    let ys =
      List.map
        (fun s -> track_y (List.assoc (seg_name s) tracks) + (m1w / 2))
        incident
    in
    let lo = List.fold_left min from_y ys and hi = List.fold_left max from_y ys in
    ignore
      (Lobj.add_shape obj ~layer:"metal2"
         ~rect:(Rect.make ~x0:(x - (m2w / 2)) ~y0:lo ~x1:(x + (m2w / 2)) ~y1:hi)
         ~net ());
    List.iter (fun y -> ignore (Wire.via env obj ~at:(x, y) ~net ())) ys
  in
  List.iter (fun (x, net) -> branch ~x ~from_y:y_top ~net) spec.top;
  List.iter (fun (x, net) -> branch ~x ~from_y:y_bottom ~net) spec.bottom;
  { tracks; track_count; density = density spec; height = needed }
