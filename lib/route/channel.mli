(** Detailed channel router: constrained left-edge (Hashimoto–Stevens).

    Pins along the channel's top and bottom edges, one horizontal metal1
    trunk per net packed onto shared tracks (disjoint intervals share a
    track), vertical metal2 branches with vias.  Vertical constraints
    (a column with both a top and a bottom pin forces the top net's trunk
    above the bottom net's) are honoured; cyclic constraints would need
    doglegs and fail with a structured diagnostic
    ({!Amg_robust.Diag.Fail}, subsystem [Route], codes under
    ["route."]). *)

type spec = {
  top : (int * string) list;     (** pin x position (nm), net *)
  bottom : (int * string) list;
}

type result = {
  tracks : (string * int) list;  (** net → track index, 0 = topmost *)
  track_count : int;
  density : int;                 (** lower bound on any router's tracks *)
  height : int;                  (** required channel height in nm *)
}

val nets_of : spec -> string list

val density : spec -> int
(** Maximum number of net intervals crossing one column. *)

val vcg : spec -> (string * string) list
(** Vertical constraint edges (top net must be above bottom net). *)

val assign : spec -> (string * int) list * int
(** Track assignment and track count.
    @raise Amg_robust.Diag.Fail on cyclic vertical constraints
    (code ["route.unroutable-cyclic"]). *)

val route :
  Amg_core.Env.t ->
  Amg_layout.Lobj.t ->
  spec:spec ->
  y_top:int ->
  y_bottom:int ->
  x0:int ->
  result
(** Add the channel's geometry between [y_bottom] and [y_top]: trunks,
    branches from the two edges, vias.
    @raise Amg_robust.Diag.Fail when the channel is too short for the
    tracks (code ["route.channel-too-short"]). *)

(** {2 Restricted doglegs (Deutsch)}

    Multi-pin nets are split at their internal pin columns into segments
    that may sit on different tracks, connected by the pin branch at the
    junction column.  This breaks vertical-constraint cycles that pass
    through distinct spans of a net, and lets long nets escape dense
    regions. *)

type seg = { s_net : string; s_idx : int; s_lo : int; s_hi : int }

val segments : spec -> seg list
val seg_name : seg -> string

val seg_vcg : spec -> seg list -> (string * string) list

val assign_dogleg : spec -> seg list * (string * int) list * int
(** Segments, their track assignment (keyed by {!seg_name}) and the track
    count.  @raise Amg_robust.Diag.Fail when even the segment graph is
    cyclic. *)

val route_dogleg :
  Amg_core.Env.t ->
  Amg_layout.Lobj.t ->
  spec:spec ->
  y_top:int ->
  y_bottom:int ->
  x0:int ->
  result
(** Like {!route} with dogleg splitting; [result.tracks] is keyed by
    segment name. *)
