(* Technology-deck lint: structural consistency checks on a loaded deck.

   A rule table that references undeclared layers, leaves a cut without a
   size, or declares a landing pad thinner than the layer's own minimum
   width produces confusing downstream failures (primitives that refuse to
   expand, DRC noise, extraction opens).  Linting the deck once at load
   time converts those into direct messages naming the offending rule. *)

(* Hand-written printers/comparisons: ppx_deriving's generated code trips
   over a constructor named [Error] (collision with [result]). *)
type severity = Error | Warning

let severity_str = function Error -> "Error" | Warning -> "Warning"
let pp_severity ppf s = Format.pp_print_string ppf (severity_str s)
let show_severity = severity_str
let equal_severity (a : severity) b = a = b
let compare_severity (a : severity) b = compare a b

type issue = { severity : severity; code : string; message : string }

let pp_issue_repr ppf i =
  Format.fprintf ppf "{ severity = %s; code = %S; message = %S }"
    (severity_str i.severity) i.code i.message

let show_issue i = Format.asprintf "%a" pp_issue_repr i
let equal_issue (a : issue) b = a = b
let compare_issue (a : issue) b = compare a b

let issue severity code fmt = Fmt.kstr (fun message -> { severity; code; message }) fmt

let errors issues = List.filter (fun i -> i.severity = Error) issues
let warnings issues = List.filter (fun i -> i.severity = Warning) issues

let pp_issue ppf i =
  Fmt.pf ppf "%s %s: %s"
    (match i.severity with Error -> "error" | Warning -> "warning")
    i.code i.message

let pp ppf issues = Fmt.(list ~sep:(any "@,") pp_issue) ppf issues

(* --- individual passes ------------------------------------------------ *)

let check_rule_layers tech =
  let rules = Technology.rules tech in
  let out = ref [] in
  let known where layer =
    if not (Technology.mem_layer tech layer) then
      out :=
        issue Error "unknown-layer" "%s rule references undeclared layer %S"
          where layer
        :: !out
  in
  Rules.iter_widths rules (fun l _ -> known "width" l);
  Rules.iter_spaces rules (fun a b _ ->
      known "space" a;
      known "space" b);
  Rules.iter_enclosures rules (fun ~outer ~inner _ ->
      known "enclose" outer;
      known "enclose" inner);
  Rules.iter_extensions rules (fun ~of_ ~past _ ->
      known "extend" of_;
      known "extend" past);
  Rules.iter_cut_sizes rules (fun l _ -> known "cutsize" l);
  Rules.iter_cut_spaces rules (fun l _ -> known "cutspace" l);
  Rules.iter_min_areas rules (fun l _ -> known "minarea" l);
  List.rev !out

let check_positive tech =
  let rules = Technology.rules tech in
  let out = ref [] in
  let pos where v =
    if v <= 0 then
      out := issue Error "non-positive" "%s rule has value %d <= 0" where v :: !out
  in
  Rules.iter_widths rules (fun l v -> pos (Printf.sprintf "width %s" l) v);
  Rules.iter_spaces rules (fun a b v ->
      pos (Printf.sprintf "space %s %s" a b) v);
  Rules.iter_enclosures rules (fun ~outer ~inner v ->
      pos (Printf.sprintf "enclose %s %s" outer inner) v);
  Rules.iter_extensions rules (fun ~of_ ~past v ->
      pos (Printf.sprintf "extend %s %s" of_ past) v);
  Rules.iter_cut_sizes rules (fun l v -> pos (Printf.sprintf "cutsize %s" l) v);
  Rules.iter_cut_spaces rules (fun l v -> pos (Printf.sprintf "cutspace %s" l) v);
  Rules.iter_min_areas rules (fun l v -> pos (Printf.sprintf "minarea %s" l) v);
  List.rev !out

let check_grid tech =
  let rules = Technology.rules tech in
  let g = Rules.grid rules in
  let out = ref [] in
  let on_grid where v =
    if g > 0 && v mod g <> 0 then
      out :=
        issue Warning "off-grid" "%s = %d nm is not a multiple of the %d nm grid"
          where v g
        :: !out
  in
  Rules.iter_widths rules (fun l v -> on_grid (Printf.sprintf "width %s" l) v);
  Rules.iter_spaces rules (fun a b v ->
      on_grid (Printf.sprintf "space %s %s" a b) v);
  Rules.iter_enclosures rules (fun ~outer ~inner v ->
      on_grid (Printf.sprintf "enclose %s %s" outer inner) v);
  Rules.iter_cut_sizes rules (fun l v -> on_grid (Printf.sprintf "cutsize %s" l) v);
  List.rev !out

let check_cuts tech =
  let rules = Technology.rules tech in
  let out = ref [] in
  (* Every declared cut layer needs size, pitch and landing pads on at least
     one metal and one non-metal conducting layer — the structure the derive
     machinery, the DRC enclosure policy and extraction all assume. *)
  List.iter
    (fun (l : Layer.t) ->
      let name = l.Layer.name in
      (match Rules.cut_size_opt rules name with
      | None ->
          out :=
            issue Error "cut-without-size" "cut layer %s has no cutsize rule"
              name
            :: !out
      | Some _ -> ());
      let landings = Rules.enclosing_layers rules ~inner:name in
      let metal, non_metal =
        List.partition
          (fun (outer, _) ->
            match Technology.layer tech outer with
            | Some ol -> Layer.is_metal ol
            | None -> false)
          landings
      in
      if metal = [] then
        out :=
          issue Error "cut-no-metal-landing"
            "cut layer %s has no enclosure rule from any metal layer" name
          :: !out;
      if non_metal = [] && String.equal name "contact" then
        out :=
          issue Warning "cut-no-lower-landing"
            "cut layer %s lands on no non-metal layer (no enclose rule)" name
          :: !out)
    (Technology.cut_layers tech);
  (* cutsize rules must target cut-kind layers. *)
  Rules.iter_cut_sizes rules (fun lname _ ->
      match Technology.layer tech lname with
      | Some l when not (Layer.is_cut l) ->
          out :=
            issue Error "cutsize-on-non-cut"
              "cutsize rule on %s, which is not a cut layer" lname
            :: !out
      | _ -> ());
  List.rev !out

let check_landing_pads tech =
  (* A minimal landing pad (cut + 2 * enclosure) must satisfy the outer
     layer's own width rule, or every minimal pad the primitives emit is a
     width violation. *)
  let rules = Technology.rules tech in
  let out = ref [] in
  List.iter
    (fun (l : Layer.t) ->
      let cut = l.Layer.name in
      match Rules.cut_size_opt rules cut with
      | None -> ()
      | Some size ->
          List.iter
            (fun (outer, margin) ->
              match Rules.width_opt rules outer with
              | Some w when size + (2 * margin) < w ->
                  out :=
                    issue Error "pad-below-width"
                      "minimal %s pad on %s is %d nm but width %s = %d nm" cut
                      outer
                      (size + (2 * margin))
                      outer w
                    :: !out
              | _ -> ())
            (Rules.enclosing_layers rules ~inner:cut))
    (Technology.cut_layers tech);
  List.rev !out

let check_routing_layers tech =
  let rules = Technology.rules tech in
  let out = ref [] in
  List.iter
    (fun (l : Layer.t) ->
      let name = l.Layer.name in
      if Layer.is_routing l then begin
        if Rules.width_opt rules name = None then
          out :=
            issue Warning "no-width"
              "routing layer %s has no width rule (falls back to grid)" name
            :: !out;
        if Rules.space rules name name = None then
          out :=
            issue Warning "no-self-space"
              "routing layer %s has no same-layer spacing rule" name
            :: !out
      end)
    (Technology.layers tech);
  List.rev !out

let check_gds_numbers tech =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun (l : Layer.t) ->
      let g = l.Layer.gds in
      match Hashtbl.find_opt seen g with
      | Some other ->
          Some
            (issue Error "duplicate-gds" "layers %s and %s share GDS number %d"
               other l.Layer.name g)
      | None ->
          Hashtbl.replace seen g l.Layer.name;
          None)
    (Technology.layers tech)

let check_min_areas tech =
  (* A minimum area at or below width^2 can never fire: any width-clean
     rectangle already satisfies it. *)
  let rules = Technology.rules tech in
  let out = ref [] in
  Rules.iter_min_areas rules (fun l a ->
      match Rules.width_opt rules l with
      | Some w when a < w * w ->
          out :=
            issue Warning "vacuous-minarea"
              "minarea %s = %.2f um2 is below width^2 = %.2f um2 and can \
               never fire"
              l
              (float_of_int a /. 1.0e6)
              (float_of_int (w * w) /. 1.0e6)
            :: !out
      | _ -> ());
  List.rev !out

let check_latchup tech =
  let rules = Technology.rules tech in
  if
    Rules.latchup_dist rules <= 0
    && List.exists (fun (l : Layer.t) -> Layer.is_active l) (Technology.layers tech)
  then
    [
      issue Warning "no-latchup"
        "deck has diffusion layers but no latchup distance; the Fig. 1 cover \
         check will be vacuous";
    ]
  else []

let check_conducting_cuts tech =
  List.filter_map
    (fun (l : Layer.t) ->
      if Layer.is_cut l && not l.Layer.conducting then
        Some
          (issue Error "non-conducting-cut"
             "cut layer %s is marked non-conducting; extraction would open \
              every via"
             l.Layer.name)
      else None)
    (Technology.layers tech)

let check tech =
  List.concat
    [
      check_rule_layers tech;
      check_positive tech;
      check_grid tech;
      check_cuts tech;
      check_landing_pads tech;
      check_min_areas tech;
      check_routing_layers tech;
      check_gds_numbers tech;
      check_latchup tech;
      check_conducting_cuts tech;
    ]

let is_clean tech = errors (check tech) = []

(* Bridge into the structured diagnostics layer: lint codes become
   ["tech.lint."]-prefixed Diag codes so 'amgen tech' can report deck
   problems through the same channel as every other failure. *)
let to_diags ?file issues =
  let module Diag = Amg_robust.Diag in
  List.map
    (fun i ->
      let severity =
        match i.severity with Error -> Diag.Error | Warning -> Diag.Warning
      in
      let payload = match file with None -> [] | Some f -> [ ("file", f) ] in
      Diag.v ~severity ~payload Diag.Tech ~code:("tech.lint." ^ i.code)
        i.message)
    issues
