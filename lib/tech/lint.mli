(** Technology-deck lint.

    Structural consistency checks on a loaded technology: rules that
    reference undeclared layers, cuts without sizes or landing pads,
    landing pads narrower than the landing layer's own width rule,
    off-grid values, duplicate GDS numbers, a missing latch-up distance.
    Run once after {!Tech_file.load} (the [amgen tech] command does) so
    deck mistakes surface as direct messages instead of confusing
    generator or DRC failures later. *)

type severity = Error | Warning

val pp_severity : Format.formatter -> severity -> unit
val show_severity : severity -> string
val equal_severity : severity -> severity -> bool
val compare_severity : severity -> severity -> int

type issue = { severity : severity; code : string; message : string }

val show_issue : issue -> string
val equal_issue : issue -> issue -> bool
val compare_issue : issue -> issue -> int

val check : Technology.t -> issue list
(** All findings, errors and warnings, in pass order. *)

val errors : issue list -> issue list
val warnings : issue list -> issue list

val is_clean : Technology.t -> bool
(** No {e errors} (warnings allowed). *)

val pp_issue : Format.formatter -> issue -> unit
val pp : Format.formatter -> issue list -> unit

val to_diags : ?file:string -> issue list -> Amg_robust.Diag.t list
(** Issues as structured diagnostics (codes prefixed ["tech.lint."],
    subsystem [Tech]); [?file] names the deck in each payload. *)
