(* Concrete syntax for the technology description file.

   Line-oriented; '#' starts a comment.  Distances are micrometres.

     technology generic-bicmos-1u
     grid 0.05
     latchup 50.0
     layer poly poly gds=10 res=25 acap=88 fcap=54 fill=hatch color=#cc2222
     width poly 1.0
     space poly poly 1.5
     enclose metal1 contact 0.5
     extend poly pdiff 1.0
     cutsize contact 1.0
     cutspace contact 1.5
*)

module Units = Amg_geometry.Units
module Diag = Amg_robust.Diag

(* Every parse failure is a structured diagnostic carrying the file (when
   known) and 1-based line of the offending directive. *)
let fail ?file ~code line fmt =
  Diag.failf
    ~span:(Diag.span ?file line)
    ~hint:"see the technology file format reference in README.md"
    Diag.Tech ~code fmt

let nm_of_string ?file line s =
  match float_of_string_opt s with
  | Some f -> Units.of_um f
  | None -> fail ?file ~code:"tech.parse.bad-number" line "expected a number, got %S" s

(* Tolerate tabs and CRLF line endings: '\r' left by splitting a CRLF file
   on '\n' is just another separator. *)
let split_words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char '\r')
  |> List.filter (fun w -> w <> "")

(* A comment starts at a '#' that begins the line or follows whitespace —
   a '#' inside a token (a colour value like [color=#cc2222]) is data. *)
let strip_comment s =
  let n = String.length s in
  let rec find i =
    if i >= n then None
    else if s.[i] = '#' && (i = 0 || s.[i - 1] = ' ' || s.[i - 1] = '\t') then
      Some i
    else find (i + 1)
  in
  match find 0 with Some i -> String.sub s 0 i | None -> s

let parse_layer_line ?file lineno = function
  | name :: kind_s :: opts ->
      let kind =
        match Layer.kind_of_string kind_s with
        | Some k -> k
        | None ->
            fail ?file ~code:"tech.parse.unknown-layer-kind" lineno
              "unknown layer kind %S" kind_s
      in
      let gds = ref 0
      and res = ref 0.
      and acap = ref 0.
      and fcap = ref 0.
      and style = ref Patterns.Solid
      and color = ref "#888888"
      and conducting = ref true in
      let float_opt v =
        match float_of_string_opt v with
        | Some f -> f
        | None ->
            fail ?file ~code:"tech.parse.bad-number" lineno
              "bad numeric option value %S" v
      in
      List.iter
        (fun opt ->
          match String.index_opt opt '=' with
          | None ->
              if opt = "nonconducting" then conducting := false
              else
                fail ?file ~code:"tech.parse.unknown-option" lineno
                  "unknown layer option %S" opt
          | Some i -> (
              let k = String.sub opt 0 i
              and v = String.sub opt (i + 1) (String.length opt - i - 1) in
              match k with
              | "gds" -> gds := int_of_float (float_opt v)
              | "res" -> res := float_opt v
              | "acap" -> acap := float_opt v
              | "fcap" -> fcap := float_opt v
              | "color" -> color := v
              | "fill" -> (
                  match Patterns.style_of_string v with
                  | Some s -> style := s
                  | None ->
                      fail ?file ~code:"tech.parse.unknown-option" lineno
                        "unknown fill style %S" v)
              | _ ->
                  fail ?file ~code:"tech.parse.unknown-option" lineno
                    "unknown layer option %S" k))
        opts;
      Layer.make ~name ~kind ~gds:!gds ~conducting:!conducting ~sheet_res:!res
        ~area_cap:!acap ~fringe_cap:!fcap
        ~fill:(Patterns.make ~style:!style !color)
        ()
  | _ ->
      fail ?file ~code:"tech.parse.layer-line" lineno
        "layer line needs at least a name and a kind"

let parse_string ?file src =
  let lines = String.split_on_char '\n' src in
  (* First pass: pick up the grid so the rule table starts correct. *)
  let grid = ref 50 in
  List.iteri
    (fun i line ->
      match split_words (strip_comment line) with
      | [ "grid"; v ] -> grid := nm_of_string ?file (i + 1) v
      | _ -> ())
    lines;
  let rules = Rules.create ~grid:!grid () in
  let tech = ref None in
  let get_tech lineno =
    match !tech with
    | Some t -> t
    | None ->
        fail ?file ~code:"tech.parse.missing-technology" lineno
          "the first directive must be 'technology <name>'"
  in
  let check_layer lineno t l =
    if not (Technology.mem_layer t l) then
      fail ?file ~code:"tech.parse.unknown-layer" lineno "unknown layer %S" l
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      match split_words (strip_comment line) with
      | [] -> ()
      | [ "technology"; name ] ->
          if !tech <> None then
            fail ?file ~code:"tech.parse.duplicate-technology" lineno
              "duplicate 'technology' directive";
          tech := Some (Technology.create ~name ~rules ())
      | [ "grid"; _ ] -> ()
      | [ "latchup"; v ] ->
          ignore (get_tech lineno);
          Rules.set_latchup_dist rules (nm_of_string ?file lineno v)
      | "layer" :: rest ->
          Technology.add_layer (get_tech lineno)
            (parse_layer_line ?file lineno rest)
      | [ "width"; l; v ] ->
          check_layer lineno (get_tech lineno) l;
          Rules.set_width rules l (nm_of_string ?file lineno v)
      | [ "space"; a; b; v ] ->
          let t = get_tech lineno in
          check_layer lineno t a;
          check_layer lineno t b;
          Rules.set_space rules a b (nm_of_string ?file lineno v)
      | [ "enclose"; outer; inner; v ] ->
          let t = get_tech lineno in
          check_layer lineno t outer;
          check_layer lineno t inner;
          Rules.set_enclosure rules ~outer ~inner (nm_of_string ?file lineno v)
      | [ "extend"; of_; past; v ] ->
          let t = get_tech lineno in
          check_layer lineno t of_;
          check_layer lineno t past;
          Rules.set_extension rules ~of_ ~past (nm_of_string ?file lineno v)
      | [ "cutsize"; l; v ] ->
          check_layer lineno (get_tech lineno) l;
          Rules.set_cut_size rules l (nm_of_string ?file lineno v)
      | [ "cutspace"; l; v ] ->
          check_layer lineno (get_tech lineno) l;
          Rules.set_cut_space rules l (nm_of_string ?file lineno v)
      | [ "minarea"; l; v ] ->
          (* Value in um^2. *)
          check_layer lineno (get_tech lineno) l;
          let a =
            match float_of_string_opt v with
            | Some f when f >= 0. -> int_of_float (f *. 1.0e6)
            | _ -> fail ?file ~code:"tech.parse.bad-number" lineno "bad area %S" v
          in
          Rules.set_min_area rules l a
      | w :: _ ->
          fail ?file ~code:"tech.parse.unknown-directive" lineno
            "unknown directive %S" w)
    lines;
  match !tech with
  | Some t -> t
  | None -> fail ?file ~code:"tech.parse.empty" 1 "empty technology file"

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  parse_string ~file:path src

let um_str nm =
  let f = Units.to_um nm in
  if Float.is_integer f then Printf.sprintf "%.0f" f else Printf.sprintf "%g" f

let to_string tech =
  let b = Buffer.create 4096 in
  let rules = Technology.rules tech in
  let line fmt = Fmt.kstr (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "technology %s" (Technology.name tech);
  line "grid %s" (um_str (Rules.grid rules));
  if Rules.latchup_dist rules > 0 then line "latchup %s" (um_str (Rules.latchup_dist rules));
  List.iter
    (fun (l : Layer.t) ->
      line "layer %s %s gds=%d res=%g acap=%g fcap=%g fill=%s color=%s%s" l.name
        (Layer.kind_to_string l.kind) l.gds l.sheet_res l.area_cap l.fringe_cap
        (Patterns.style_to_string l.fill.Patterns.style)
        l.fill.Patterns.color
        (if l.conducting then "" else " nonconducting"))
    (Technology.layers tech);
  let collect iter =
    let acc = ref [] in
    iter (fun entry -> acc := entry :: !acc);
    List.sort compare !acc
  in
  collect (fun f -> Rules.iter_widths rules (fun l d -> f (l, d)))
  |> List.iter (fun (l, d) -> line "width %s %s" l (um_str d));
  collect (fun f -> Rules.iter_spaces rules (fun a bb d -> f (a, bb, d)))
  |> List.iter (fun (a, bb, d) -> line "space %s %s %s" a bb (um_str d));
  collect (fun f -> Rules.iter_enclosures rules (fun ~outer ~inner d -> f (outer, inner, d)))
  |> List.iter (fun (o, i, d) -> line "enclose %s %s %s" o i (um_str d));
  collect (fun f -> Rules.iter_extensions rules (fun ~of_ ~past d -> f (of_, past, d)))
  |> List.iter (fun (o, p, d) -> line "extend %s %s %s" o p (um_str d));
  collect (fun f -> Rules.iter_cut_sizes rules (fun l d -> f (l, d)))
  |> List.iter (fun (l, d) -> line "cutsize %s %s" l (um_str d));
  collect (fun f -> Rules.iter_cut_spaces rules (fun l d -> f (l, d)))
  |> List.iter (fun (l, d) -> line "cutspace %s %s" l (um_str d));
  collect (fun f -> Rules.iter_min_areas rules (fun l a -> f (l, a)))
  |> List.iter (fun (l, a) ->
         let f = float_of_int a /. 1.0e6 in
         line "minarea %s %s" l
           (if Float.is_integer f then Printf.sprintf "%.0f" f
            else Printf.sprintf "%g" f));
  Buffer.contents b

let save tech path =
  let oc = open_out path in
  output_string oc (to_string tech);
  close_out oc
