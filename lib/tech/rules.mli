(** Design-rule tables.

    The generator environment "evaluates and fulfills the design rules
    automatically" (§2.1); every primitive and the compactor query these
    tables.  All distances are nanometres.

    Rule classes:
    - {e width}: minimum width of a shape on a layer;
    - {e space}: minimum spacing between two shapes on the given layer pair
      (symmetric).  Absence of a rule means the layers may overlap freely;
    - {e enclosure}: an [outer]-layer shape must extend past an [inner]-layer
      shape by the margin on all four sides (e.g. metal1 around contact);
    - {e extension}: an [of_]-layer shape must extend past a [past]-layer
      shape along the crossing direction (e.g. poly gate end-cap past
      diffusion);
    - {e cut size/space}: cut layers (contact, via) have a fixed opening size
      and a minimum cut-to-cut pitch;
    - {e latch-up distance}: half-size of the temporary rectangle drawn
      around substrate contacts in the Fig. 1 cover check. *)

type t

val create : ?grid:int -> unit -> t
(** Fresh empty table; [grid] (default 50 nm) is the manufacturing grid and
    the fallback minimum width. *)

val set_width : t -> string -> int -> unit
val set_space : t -> string -> string -> int -> unit
val set_enclosure : t -> outer:string -> inner:string -> int -> unit
val set_extension : t -> of_:string -> past:string -> int -> unit
val set_cut_size : t -> string -> int -> unit
val set_cut_space : t -> string -> int -> unit
val set_latchup_dist : t -> int -> unit

val set_min_area : t -> string -> int -> unit
(** Minimum area of a connected same-layer region, in nm^2. *)

val width : t -> string -> int
(** Minimum width; defaults to the grid when no rule is declared. *)

val width_opt : t -> string -> int option

val space : t -> string -> string -> int option
(** Symmetric spacing rule, [None] when the layers are unconstrained. *)

val space_exn : t -> string -> string -> int

val space_or_zero : t -> string -> string -> int
(** The spacing rule, or 0 for unconstrained pairs.  This is the exact
    candidate margin for spatial-index queries: every relation the
    compactor or checker can derive for the pair (spacing, mergeable
    contact, keep-clear) acts within this distance. *)

val max_space : t -> int
(** Largest spacing rule of the deck — a conservative layer-independent
    query margin. *)

val enclosure : t -> outer:string -> inner:string -> int option
val enclosure_or_zero : t -> outer:string -> inner:string -> int

val extension : t -> of_:string -> past:string -> int option

val cut_size : t -> string -> int
(** @raise Invalid_argument when the layer has no cut-size rule. *)

val cut_size_opt : t -> string -> int option
val cut_space : t -> string -> int

val min_area : t -> string -> int option
(** Minimum connected-region area in nm^2, when the deck declares one. *)

val latchup_dist : t -> int
val grid : t -> int

val enclosing_layers : t -> inner:string -> (string * int) list
(** All [(outer, margin)] enclosure rules for the given inner layer, sorted;
    used by primitives that must expand surrounding geometry. *)

val iter_widths : t -> (string -> int -> unit) -> unit
val iter_spaces : t -> (string -> string -> int -> unit) -> unit
val iter_enclosures : t -> (outer:string -> inner:string -> int -> unit) -> unit
val iter_extensions : t -> (of_:string -> past:string -> int -> unit) -> unit
val iter_cut_sizes : t -> (string -> int -> unit) -> unit
val iter_cut_spaces : t -> (string -> int -> unit) -> unit
val iter_min_areas : t -> (string -> int -> unit) -> unit
