(** Reader/writer for the textual technology description file.

    The paper keeps all design rules in a technology description file so that
    module source code stays technology independent (§1, §2.1).  The format
    here is line oriented with distances in micrometres; see the project
    README for a full example.  {!to_string} and {!parse_string} round-trip. *)

val parse_string : ?file:string -> string -> Technology.t
(** @raise Amg_robust.Diag.Fail on malformed input; the diagnostic's span
    carries [?file] (when given) and the 1-based line of the offending
    directive, its codes live under ["tech.parse."]. *)

val load : string -> Technology.t
(** Read a technology from a file.
    @raise Amg_robust.Diag.Fail on malformed input, [Sys_error] on I/O. *)

val to_string : Technology.t -> string
(** Canonical textual form (sorted rule sections). *)

val save : Technology.t -> string -> unit
