(* Design-rule tables.  All distances in nanometres.  Pair-keyed rules
   (spacing) are stored with the key normalised so lookup is symmetric;
   directed rules (enclosure, extension) are stored as given. *)

type t = {
  grid : int;
  mutable latchup_dist : int;
  widths : (string, int) Hashtbl.t;
  spaces : (string * string, int) Hashtbl.t;
  enclosures : (string * string, int) Hashtbl.t;
  extensions : (string * string, int) Hashtbl.t;
  cut_sizes : (string, int) Hashtbl.t;
  cut_spaces : (string, int) Hashtbl.t;
  min_areas : (string, int) Hashtbl.t; (* nm^2 *)
}

let create ?(grid = 50) () =
  {
    grid;
    latchup_dist = 0;
    widths = Hashtbl.create 31;
    spaces = Hashtbl.create 31;
    enclosures = Hashtbl.create 31;
    extensions = Hashtbl.create 31;
    cut_sizes = Hashtbl.create 7;
    cut_spaces = Hashtbl.create 7;
    min_areas = Hashtbl.create 7;
  }

let norm_pair a b = if String.compare a b <= 0 then (a, b) else (b, a)

let set_width t layer d = Hashtbl.replace t.widths layer d
let set_space t a b d = Hashtbl.replace t.spaces (norm_pair a b) d
let set_enclosure t ~outer ~inner d = Hashtbl.replace t.enclosures (outer, inner) d
let set_extension t ~of_ ~past d = Hashtbl.replace t.extensions (of_, past) d
let set_cut_size t layer d = Hashtbl.replace t.cut_sizes layer d
let set_cut_space t layer d = Hashtbl.replace t.cut_spaces layer d
let set_min_area t layer a = Hashtbl.replace t.min_areas layer a
let set_latchup_dist t d = t.latchup_dist <- d

let width t layer =
  Amg_robust.Inject.(probe Rule_lookup);
  match Hashtbl.find_opt t.widths layer with Some d -> d | None -> t.grid

let width_opt t layer = Hashtbl.find_opt t.widths layer

let space t a b =
  Amg_robust.Inject.(probe Rule_lookup);
  Hashtbl.find_opt t.spaces (norm_pair a b)

let space_or_zero t a b =
  match space t a b with Some d -> d | None -> 0

let max_space t =
  Hashtbl.fold (fun _ d acc -> max d acc) t.spaces 0

let space_exn t a b =
  match space t a b with
  | Some d -> d
  | None -> Fmt.invalid_arg "Rules.space_exn: no spacing rule %s/%s" a b

let enclosure t ~outer ~inner = Hashtbl.find_opt t.enclosures (outer, inner)

let enclosure_or_zero t ~outer ~inner =
  Option.value ~default:0 (enclosure t ~outer ~inner)

let extension t ~of_ ~past = Hashtbl.find_opt t.extensions (of_, past)

let cut_size t layer =
  match Hashtbl.find_opt t.cut_sizes layer with
  | Some d -> d
  | None -> Fmt.invalid_arg "Rules.cut_size: %s is not a cut layer" layer

let cut_size_opt t layer = Hashtbl.find_opt t.cut_sizes layer

let cut_space t layer =
  match Hashtbl.find_opt t.cut_spaces layer with
  | Some d -> d
  | None -> width t layer

let latchup_dist t = t.latchup_dist
let grid t = t.grid

(* Layers that must enclose [inner], with their margins: every (outer, d)
   rule whose inner component is [inner]. *)
let enclosing_layers t ~inner =
  Hashtbl.fold
    (fun (o, i) d acc -> if String.equal i inner then (o, d) :: acc else acc)
    t.enclosures []
  |> List.sort compare

let iter_widths t f = Hashtbl.iter f t.widths
let iter_spaces t f = Hashtbl.iter (fun (a, b) d -> f a b d) t.spaces
let iter_enclosures t f = Hashtbl.iter (fun (o, i) d -> f ~outer:o ~inner:i d) t.enclosures
let iter_extensions t f = Hashtbl.iter (fun (o, p) d -> f ~of_:o ~past:p d) t.extensions
let iter_cut_sizes t f = Hashtbl.iter f t.cut_sizes
let iter_cut_spaces t f = Hashtbl.iter f t.cut_spaces
let min_area t layer = Hashtbl.find_opt t.min_areas layer
let iter_min_areas t f = Hashtbl.iter f t.min_areas
