module Rect = Amg_geometry.Rect
module Dir = Amg_geometry.Dir
module Rules = Amg_tech.Rules
module Technology = Amg_tech.Technology
module Layer = Amg_tech.Layer
module Lobj = Amg_layout.Lobj
module Shape = Amg_layout.Shape
module Constraints = Amg_compact.Constraints
module Obs = Amg_obs.Obs

type check = Widths | Spacings | Enclosures | Extensions | Latch_up
[@@deriving show { with_path = false }, eq]

let all_checks = [ Widths; Spacings; Enclosures; Extensions; Latch_up ]

let check_widths ~tech obj =
  let rules = Technology.rules tech in
  List.filter_map
    (fun (s : Shape.t) ->
      match Technology.layer tech s.Shape.layer with
      | None -> None
      | Some l when l.Layer.kind = Layer.Marker -> None
      | Some l when Layer.is_cut l ->
          let req = Rules.cut_size rules s.layer in
          let w = Rect.width s.rect and h = Rect.height s.rect in
          if w <> req || h <> req then
            Some
              (Violation.make
                 (Violation.Cut_size { layer = s.layer; required = req; actual_w = w; actual_h = h })
                 s.rect)
          else None
      | Some _ -> (
          match Rules.width_opt rules s.layer with
          | None -> None
          | Some req ->
              let actual = min (Rect.width s.rect) (Rect.height s.rect) in
              if actual < req then
                Some
                  (Violation.make
                     (Violation.Width { layer = s.layer; required = req; actual })
                     s.rect)
              else None))
    (Lobj.shapes obj)


(* A poly shape overlapping an active shape is a (candidate) gate: spacing
   does not apply there — the extension checks validate the crossing. *)
let gate_pair ~tech (a : Shape.t) (b : Shape.t) =
  let kind_of s =
    match Technology.layer tech s.Shape.layer with
    | Some l -> Some l.Layer.kind
    | None -> None
  in
  let is_gate p d =
    match (kind_of p, kind_of d) with
    | Some Layer.Poly, Some Layer.Diffusion -> Rect.overlaps p.Shape.rect d.Shape.rect
    | _ -> false
  in
  is_gate a b || is_gate b a

(* Union-find over the shape indices of one layer, shapes linked when they
   touch: same-layer spacing applies only between different connected
   components (touching rectangles merge into one region), and a component
   carrying two known different nets is a short.  Touch partners are found
   with a margin-0 index query instead of an all-pairs scan; shapes outside
   [idxs] (e.g. channel rectangles excluded from conduction) simply miss
   the index-to-member table and are skipped. *)
let components obj shapes idxs =
  let parent = Hashtbl.create 16 in
  let member = Hashtbl.create 16 in
  List.iter
    (fun i ->
      Hashtbl.replace parent i i;
      Hashtbl.replace member shapes.(i).Shape.id i)
    idxs;
  let rec find i =
    let p = Hashtbl.find parent i in
    if p = i then i
    else begin
      let r = find p in
      Hashtbl.replace parent i r;
      r
    end
  in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then Hashtbl.replace parent ri rj
  in
  List.iter
    (fun i ->
      let s = shapes.(i) in
      List.iter
        (fun (b : Shape.t) ->
          match Hashtbl.find_opt member b.Shape.id with
          | Some j when i < j && Rect.touches s.Shape.rect b.Shape.rect ->
              union i j
          | _ -> ())
        (Lobj.near obj ~layer:s.Shape.layer s.Shape.rect ~margin:0))
    idxs;
  find

(* Minimum-area rules apply to connected same-layer regions (a large L
   drawn as several rectangles is one region), measured with the exact
   union area. *)
let check_min_areas ~tech obj =
  let rules = Technology.rules tech in
  let shapes = Array.of_list (Lobj.shapes obj) in
  let out = ref [] in
  let by_layer = Hashtbl.create 16 in
  Array.iteri
    (fun i (s : Shape.t) ->
      match Rules.min_area rules s.Shape.layer with
      | None -> ()
      | Some _ ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt by_layer s.layer) in
          Hashtbl.replace by_layer s.layer (i :: cur))
    shapes;
  Hashtbl.iter
    (fun layer idxs ->
      let required = Option.get (Rules.min_area rules layer) in
      let find = components obj shapes idxs in
      let groups = Hashtbl.create 8 in
      List.iter
        (fun i ->
          let r = find i in
          let cur = Option.value ~default:[] (Hashtbl.find_opt groups r) in
          Hashtbl.replace groups r (shapes.(i).Shape.rect :: cur))
        idxs;
      Hashtbl.iter
        (fun _root rects ->
          let actual = Amg_geometry.Region.area rects in
          if actual < required then
            let where =
              match Amg_geometry.Rect.hull_list rects with
              | Some h -> h
              | None -> Rect.of_size ~x:0 ~y:0 ~w:0 ~h:0
            in
            out :=
              Violation.make
                (Violation.Min_area { layer; required; actual })
                where
              :: !out)
        groups)
    by_layer;
  !out

let check_spacings ~tech obj =
  let rules = Technology.rules tech in
  let shapes = Array.of_list (Lobj.shapes obj) in
  let out = ref [] in
  let n = Array.length shapes in
  let layers = Lobj.layers obj in
  let idx_of_id = Hashtbl.create n in
  Array.iteri (fun i (s : Shape.t) -> Hashtbl.replace idx_of_id s.Shape.id i) shapes;
  (* Connected components per layer, for same-layer merge semantics. *)
  let by_layer = Hashtbl.create 16 in
  Array.iteri
    (fun i (s : Shape.t) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_layer s.layer) in
      Hashtbl.replace by_layer s.layer (i :: cur))
    shapes;
  let find_by_layer = Hashtbl.create 16 in
  Hashtbl.iter
    (fun layer idxs ->
      Hashtbl.replace find_by_layer layer (components obj shapes idxs))
    by_layer;
  let same_component layer i j =
    let find = Hashtbl.find find_by_layer layer in
    find i = find j
  in
  (* A diffusion rectangle crossed by a gate is electrically interrupted by
     the channel, and a shape under the [resmark] marker is a resistor
     body: neither conducts for short detection.  Both tests only involve
     shapes meeting [s], so a margin-0 query bounds them. *)
  let poly_layers =
    List.filter
      (fun l ->
        match Technology.layer tech l with
        | Some tl -> tl.Layer.kind = Layer.Poly
        | None -> false)
      layers
  in
  let is_channel i =
    let s = shapes.(i) in
    (match Technology.layer tech s.Shape.layer with
    | Some l -> Layer.is_active l
    | None -> false)
    && List.exists
         (fun pl ->
           List.exists
             (fun (p : Shape.t) -> p != s && gate_pair ~tech p s)
             (Lobj.near obj ~layer:pl s.Shape.rect ~margin:0))
         poly_layers
  in
  let is_resistive i =
    let s = shapes.(i) in
    List.exists
      (fun (m : Shape.t) -> Rect.contains_rect m.Shape.rect s.Shape.rect)
      (Lobj.near obj ~layer:"resmark" s.Shape.rect ~margin:0)
  in
  let is_channel i = is_channel i || is_resistive i in
  (* Shorts: a same-layer component carrying two known different nets.
     Channel rectangles are excluded so source and drain stay distinct. *)
  Hashtbl.iter
    (fun layer idxs ->
      let conducting = List.filter (fun i -> not (is_channel i)) idxs in
      let find = components obj shapes conducting in
      let net_of_root = Hashtbl.create 8 in
      List.iter
        (fun i ->
          match shapes.(i).Shape.net with
          | None -> ()
          | Some net -> (
              let r = find i in
              match Hashtbl.find_opt net_of_root r with
              | None -> Hashtbl.replace net_of_root r (net, i)
              | Some (other, j) when not (String.equal other net) ->
                  out :=
                    Violation.make
                      (Violation.Short { layer; net_a = other; net_b = net })
                      (Rect.hull shapes.(j).Shape.rect shapes.(i).Shape.rect)
                    :: !out
              | Some _ -> ()))
        conducting)
    by_layer;
  (* Pairwise spacing: for each shape, examine only index candidates within
     the layer pair's rule distance — any violating pair has both gaps
     below its separation, so it lies inside the inflated window.  Partners
     are deduplicated by id (each unordered pair is reported once, from its
     lower-id member) and sorted, which reproduces the all-pairs scan's
     (i, j) emission order because ascending id is insertion order. *)
  for i = 0 to n - 1 do
    let a = shapes.(i) in
    let partners =
      List.concat_map
        (fun layer ->
          let cls = Constraints.classify rules a.Shape.layer layer in
          let margin = Constraints.margin_cls cls in
          List.filter_map
            (fun (b : Shape.t) ->
              if b.Shape.id > a.Shape.id then
                match Constraints.relation_cls cls a b with
                | Constraints.Unconstrained | Constraints.Mergeable -> None
                | Constraints.Separation sep -> Some (b, sep)
              else None)
            (Lobj.near obj ~layer a.Shape.rect ~margin))
        layers
      |> List.sort (fun ((b1 : Shape.t), _) (b2, _) ->
             Int.compare b1.Shape.id b2.Shape.id)
    in
    List.iter
      (fun ((b : Shape.t), sep) ->
        if gate_pair ~tech a b then ()
        else begin
          let j = Hashtbl.find idx_of_id b.Shape.id in
          let same_layer = String.equal a.Shape.layer b.Shape.layer in
          if same_layer && same_component a.layer i j then ()
          else if Rect.touches a.rect b.rect then begin
            (* Different layers with a separation: abutment/overlap is a
               violation when a positive distance is required; a
               keep-clear (sep = 0) pair only objects to interior
               overlap.  Same-layer touching pairs are same-component and
               were skipped above. *)
            if sep > 0 || Rect.overlaps a.rect b.rect then
              out :=
                Violation.make
                  (Violation.Spacing
                     { layer_a = a.layer; layer_b = b.layer; required = sep; actual = 0 })
                  (Rect.hull a.rect b.rect)
                :: !out
          end
          else begin
            let dx = Rect.gap Dir.Horizontal a.rect b.rect in
            let dy = Rect.gap Dir.Vertical a.rect b.rect in
            let actual = max dx dy in
            if actual < sep then
              out :=
                Violation.make
                  (Violation.Spacing
                     { layer_a = a.layer; layer_b = b.layer; required = sep; actual })
                  (Rect.hull a.rect b.rect)
                :: !out
          end
        end)
      partners
  done;
  List.rev !out

(* A cut must be enclosed, with its rule margin, by every metal layer that
   has an enclosure rule for it, and by at least one of the non-metal
   landing layers (poly/diffusion/poly2 for contacts). *)
let check_enclosures ~tech obj =
  let rules = Technology.rules tech in
  let enclosed_by (c : Shape.t) outer margin =
    (* A containing shape necessarily meets the needed rectangle, so the
       margin-0 candidates around it are the only ones to test. *)
    let needed = Rect.inflate c.rect margin in
    List.exists
      (fun (s : Shape.t) -> Rect.contains_rect s.rect needed)
      (Lobj.near obj ~layer:outer needed ~margin:0)
  in
  List.concat_map
    (fun (c : Shape.t) ->
      match Technology.layer tech c.Shape.layer with
      | Some l when Layer.is_cut l ->
          let outers = Rules.enclosing_layers rules ~inner:c.layer in
          let is_metal_outer (o, _) =
            match Technology.layer tech o with
            | Some ol -> Layer.is_metal ol
            | None -> false
          in
          let metal_outers, landing_outers = List.partition is_metal_outer outers in
          let missing_metals =
            List.filter (fun (o, m) -> not (enclosed_by c o m)) metal_outers
          in
          let landing_ok =
            landing_outers = []
            || List.exists (fun (o, m) -> enclosed_by c o m) landing_outers
          in
          let vio_of (o, m) =
            Violation.make
              (Violation.Enclosure { outer = o; inner = c.layer; required = m })
              c.rect
          in
          List.map vio_of missing_metals
          @
          (if landing_ok then []
           else
             match landing_outers with
             | first :: _ -> [ vio_of first ]
             | [] -> [])
      | _ -> [])
    (Lobj.shapes obj)

(* Gate extension checks: wherever poly crosses diffusion, the poly end-caps
   and the source/drain extensions must meet their rules. *)
let check_extensions ~tech obj =
  let rules = Technology.rules tech in
  let polys =
    List.filter
      (fun (s : Shape.t) ->
        match Technology.layer tech s.Shape.layer with
        | Some l -> l.Layer.kind = Layer.Poly
        | None -> false)
      (Lobj.shapes obj)
  in
  let active_layers =
    List.filter
      (fun l ->
        match Technology.layer tech l with
        | Some tl -> Layer.is_active tl
        | None -> false)
      (Lobj.layers obj)
  in
  (* Only crossings matter, so each poly is paired with the active shapes
     meeting it (margin-0 candidates), in id order like the full scan. *)
  let diffs_near (p : Shape.t) =
    List.concat_map
      (fun l -> Lobj.near obj ~layer:l p.Shape.rect ~margin:0)
      active_layers
    |> List.sort (fun (a : Shape.t) (b : Shape.t) ->
           Int.compare a.Shape.id b.Shape.id)
  in
  let check_pair (p : Shape.t) (d : Shape.t) =
    if not (Rect.overlaps p.rect d.rect) then []
    else begin
      let pr = p.rect and dr = d.rect in
      let crosses_vertically = pr.Rect.y0 <= dr.Rect.y0 && pr.Rect.y1 >= dr.Rect.y1 in
      let crosses_horizontally = pr.Rect.x0 <= dr.Rect.x0 && pr.Rect.x1 >= dr.Rect.x1 in
      let endcap_req = Rules.extension rules ~of_:p.layer ~past:d.layer in
      let sd_req = Rules.extension rules ~of_:d.layer ~past:p.layer in
      let mk ~of_ ~past ~required ~actual where =
        if actual < required then
          [ Violation.make (Violation.Extension { of_; past; required; actual }) where ]
        else []
      in
      if crosses_vertically then
        (match endcap_req with
        | Some req ->
            mk ~of_:p.layer ~past:d.layer ~required:req
              ~actual:(min (dr.Rect.y0 - pr.Rect.y0) (pr.Rect.y1 - dr.Rect.y1))
              pr
        | None -> [])
        @
        (match sd_req with
        | Some req ->
            mk ~of_:d.layer ~past:p.layer ~required:req
              ~actual:(min (pr.Rect.x0 - dr.Rect.x0) (dr.Rect.x1 - pr.Rect.x1))
              dr
        | None -> [])
      else if crosses_horizontally then
        (match endcap_req with
        | Some req ->
            mk ~of_:p.layer ~past:d.layer ~required:req
              ~actual:(min (dr.Rect.x0 - pr.Rect.x0) (pr.Rect.x1 - dr.Rect.x1))
              pr
        | None -> [])
        @
        (match sd_req with
        | Some req ->
            mk ~of_:d.layer ~past:p.layer ~required:req
              ~actual:(min (pr.Rect.y0 - dr.Rect.y0) (dr.Rect.y1 - pr.Rect.y1))
              dr
        | None -> [])
      else
        (* Poly overlaps active without fully crossing: a malformed gate. *)
        match endcap_req with
        | Some req ->
            [ Violation.make
                (Violation.Extension
                   { of_ = p.layer; past = d.layer; required = req; actual = 0 })
                (Rect.hull pr dr) ]
        | None -> []
    end
  in
  List.concat_map (fun p -> List.concat_map (check_pair p) (diffs_near p)) polys

let span_name = function
  | Widths -> "drc.widths"
  | Spacings -> "drc.spacings"
  | Enclosures -> "drc.enclosures"
  | Extensions -> "drc.extensions"
  | Latch_up -> "drc.latchup"

let run ?(checks = all_checks) ~tech obj =
  Obs.span "drc.run" @@ fun () ->
  List.concat_map
    (fun c ->
      Obs.span (span_name c) @@ fun () ->
      Amg_robust.Inject.(probe Drc_check);
      let vs =
        match c with
        | Widths -> check_widths ~tech obj @ check_min_areas ~tech obj
        | Spacings -> check_spacings ~tech obj
        | Enclosures -> check_enclosures ~tech obj
        | Extensions -> check_extensions ~tech obj
        | Latch_up -> Latchup.check ~tech obj @ Latchup.check_well_taps ~tech obj
      in
      if Obs.enabled () then Obs.count "drc.violations" (List.length vs);
      vs)
    checks
