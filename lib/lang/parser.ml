(* Recursive-descent parser for the layout language.  Statements are
   newline-terminated; entity bodies run until the matching END-less next
   ENT or end of file, block bodies (IF/FOR/CHOOSE) until their END. *)

module Diag = Amg_robust.Diag

type state = { toks : Lexer.t array; mutable pos : int; file : string option }

let peek st = st.toks.(st.pos)

let line st = (peek st).Lexer.line

(* Diagnostics carry the 1-based file:line:col of the offending token
   (token records keep their historical 0-based [col]). *)
let fail_tok st (t : Lexer.t) ~code fmt =
  Diag.failf
    ~span:(Diag.span ?file:st.file ~col:(t.Lexer.col + 1) t.Lexer.line)
    ~hint:"see the language reference in README.md for the statement grammar"
    Diag.Lang ~code fmt

let fail st ~code fmt = fail_tok st (peek st) ~code fmt

let advance st = st.pos <- st.pos + 1

let next st =
  let t = peek st in
  advance st;
  t

let expect st tok what =
  let t = next st in
  if not (Lexer.equal_token t.Lexer.tok tok) then
    fail_tok st t ~code:"lang.parse.expected-token" "expected %s, got %s" what
      (Lexer.show_token t.Lexer.tok)

let skip_newlines st =
  while (peek st).Lexer.tok = Lexer.NEWLINE do advance st done

let end_of_stmt st =
  match (peek st).Lexer.tok with
  | Lexer.NEWLINE -> advance st
  | Lexer.EOF -> ()
  | t ->
      fail st ~code:"lang.parse.expected-token" "expected end of line, got %s"
        (Lexer.show_token t)

(* --- expressions (precedence climbing) --- *)

let binop_of_string = function
  | "+" -> Ast.Add | "-" -> Ast.Sub | "*" -> Ast.Mul | "/" -> Ast.Div
  | "==" -> Ast.Eq | "!=" -> Ast.Ne
  | "<" -> Ast.Lt | "<=" -> Ast.Le | ">" -> Ast.Gt | ">=" -> Ast.Ge
  | "&&" -> Ast.And | "||" -> Ast.Or
  | op -> invalid_arg ("binop_of_string: " ^ op)

let precedence = function
  | Ast.Or -> 1
  | Ast.And -> 2
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> 3
  | Ast.Add | Ast.Sub -> 4
  | Ast.Mul | Ast.Div -> 5

let rec parse_expr st = parse_binary st 0

and parse_binary st min_prec =
  let lhs = parse_unary st in
  let rec loop lhs =
    match (peek st).Lexer.tok with
    | Lexer.OP op when op <> "!" ->
        let b = binop_of_string op in
        let p = precedence b in
        if p < min_prec then lhs
        else begin
          advance st;
          let rhs = parse_binary st (p + 1) in
          loop (Ast.Binop (b, lhs, rhs))
        end
    | _ -> lhs
  in
  loop lhs

and parse_unary st =
  match (peek st).Lexer.tok with
  | Lexer.OP "-" ->
      advance st;
      Ast.Unop (Ast.Neg, parse_unary st)
  | Lexer.OP "!" ->
      advance st;
      Ast.Unop (Ast.Not, parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  let t = next st in
  match t.Lexer.tok with
  | Lexer.NUMBER f -> Ast.Num f
  | Lexer.STRING s -> Ast.Str s
  | Lexer.KW_TRUE -> Ast.Bool true
  | Lexer.KW_FALSE -> Ast.Bool false
  | Lexer.LPAREN ->
      let e = parse_expr st in
      expect st Lexer.RPAREN ")";
      e
  | Lexer.IDENT name -> (
      match (peek st).Lexer.tok with
      | Lexer.LPAREN ->
          advance st;
          let args = parse_args st in
          Ast.Call (name, args)
      | _ -> Ast.Ident name)
  | tok ->
      fail_tok st t ~code:"lang.parse.unexpected-token"
        "unexpected %s in expression" (Lexer.show_token tok)

and parse_args st =
  if (peek st).Lexer.tok = Lexer.RPAREN then begin
    advance st;
    []
  end
  else begin
    let rec loop acc =
      let arg =
        (* keyword argument: IDENT '=' expr *)
        match ((peek st).Lexer.tok, st.toks.(st.pos + 1).Lexer.tok) with
        | Lexer.IDENT name, Lexer.ASSIGN ->
            advance st;
            advance st;
            { Ast.arg_name = Some name; arg_value = parse_expr st }
        | _ -> { Ast.arg_name = None; arg_value = parse_expr st }
      in
      match (next st).Lexer.tok with
      | Lexer.COMMA -> loop (arg :: acc)
      | Lexer.RPAREN -> List.rev (arg :: acc)
      | tok ->
          fail st ~code:"lang.parse.expected-token"
            "expected , or ) in arguments, got %s" (Lexer.show_token tok)
    in
    loop []
  end

(* --- statements --- *)

type stop = Stop_end | Stop_else | Stop_orelse | Stop_ent | Stop_eof | Stop_margin

(* [stop_at_margin] ends an entity body when a statement starts back at
   column 0 — the paper's layout: bodies are indented, top-level calls sit
   at the margin. *)
let rec parse_stmts ?(stop_at_margin = false) st =
  let stmts = ref [] in
  let rec loop () =
    skip_newlines st;
    let t = peek st in
    match t.Lexer.tok with
    | Lexer.EOF -> Stop_eof
    | Lexer.KW_END ->
        advance st;
        Stop_end
    | Lexer.KW_ELSE ->
        advance st;
        Stop_else
    | Lexer.KW_ORELSE ->
        advance st;
        Stop_orelse
    | Lexer.KW_ENT -> Stop_ent
    | _ when stop_at_margin && t.Lexer.col = 0 && !stmts <> [] -> Stop_margin
    | _ ->
        stmts := parse_stmt st :: !stmts;
        loop ()
  in
  let stop = loop () in
  (List.rev !stmts, stop)

and parse_stmt st =
  match (peek st).Lexer.tok with
  | Lexer.KW_IF ->
      advance st;
      let cond = parse_expr st in
      end_of_stmt st;
      let then_branch, stop = parse_stmts st in
      let else_branch =
        match stop with
        | Stop_else ->
            end_of_stmt st;
            let b, stop2 = parse_stmts st in
            if stop2 <> Stop_end then
              fail st ~code:"lang.parse.expected-token" "IF: expected END";
            b
        | Stop_end -> []
        | _ -> fail st ~code:"lang.parse.expected-token" "IF: expected ELSE or END"
      in
      end_of_stmt st;
      Ast.If (cond, then_branch, else_branch)
  | Lexer.KW_FOR ->
      advance st;
      let var =
        match (next st).Lexer.tok with
        | Lexer.IDENT v -> v
        | tok ->
            fail st ~code:"lang.parse.expected-token"
              "FOR: expected variable, got %s" (Lexer.show_token tok)
      in
      expect st Lexer.ASSIGN "=";
      let lo = parse_expr st in
      expect st Lexer.KW_TO "TO";
      let hi = parse_expr st in
      end_of_stmt st;
      let body, stop = parse_stmts st in
      if stop <> Stop_end then
        fail st ~code:"lang.parse.expected-token" "FOR: expected END";
      end_of_stmt st;
      Ast.For (var, lo, hi, body)
  | Lexer.KW_CHOOSE ->
      advance st;
      end_of_stmt st;
      let rec branches acc =
        let body, stop = parse_stmts st in
        match stop with
        | Stop_orelse ->
            end_of_stmt st;
            branches (body :: acc)
        | Stop_end -> List.rev (body :: acc)
        | _ -> fail st ~code:"lang.parse.expected-token" "CHOOSE: expected ORELSE or END"
      in
      let bs = branches [] in
      end_of_stmt st;
      Ast.Choose bs
  | Lexer.IDENT name when st.toks.(st.pos + 1).Lexer.tok = Lexer.ASSIGN ->
      advance st;
      advance st;
      let e = parse_expr st in
      end_of_stmt st;
      Ast.Assign (name, e)
  | _ ->
      let e = parse_expr st in
      end_of_stmt st;
      Ast.Expr e

(* --- entities and program --- *)

let parse_params st =
  expect st Lexer.LPAREN "(";
  if (peek st).Lexer.tok = Lexer.RPAREN then begin
    advance st;
    []
  end
  else begin
    let rec loop acc =
      let param =
        match (next st).Lexer.tok with
        | Lexer.IDENT p -> { Ast.pname = p; optional = false }
        | Lexer.OP "<" -> (
            match (next st).Lexer.tok with
            | Lexer.IDENT p -> (
                match (next st).Lexer.tok with
                | Lexer.OP ">" -> { Ast.pname = p; optional = true }
                | tok ->
                    fail st ~code:"lang.parse.expected-token"
                      "expected > after optional parameter, got %s"
                      (Lexer.show_token tok))
            | tok ->
                fail st ~code:"lang.parse.expected-token"
                  "expected parameter name, got %s" (Lexer.show_token tok))
        | tok ->
            fail st ~code:"lang.parse.expected-token"
              "expected parameter, got %s" (Lexer.show_token tok)
      in
      match (next st).Lexer.tok with
      | Lexer.COMMA -> loop (param :: acc)
      | Lexer.RPAREN -> List.rev (param :: acc)
      | tok ->
          fail st ~code:"lang.parse.expected-token"
            "expected , or ) in parameters, got %s" (Lexer.show_token tok)
    in
    loop []
  end

let parse_program ?file src =
  let toks = Array.of_list (Lexer.tokenize ?file src) in
  let st = { toks; pos = 0; file } in
  let entities = ref [] in
  let top = ref [] in
  let rec loop () =
    skip_newlines st;
    match (peek st).Lexer.tok with
    | Lexer.EOF -> ()
    | Lexer.KW_ENT ->
        advance st;
        let name =
          match (next st).Lexer.tok with
          | Lexer.IDENT n -> n
          | tok ->
              fail st ~code:"lang.parse.expected-token"
                "ENT: expected name, got %s" (Lexer.show_token tok)
        in
        let params = parse_params st in
        end_of_stmt st;
        let body, stop = parse_stmts ~stop_at_margin:true st in
        (match stop with
        | Stop_ent | Stop_eof | Stop_margin -> ()
        | Stop_end -> end_of_stmt st
        | _ ->
            fail st ~code:"lang.parse.unexpected-token"
              "unexpected ELSE/ORELSE in entity body");
        entities := { Ast.ent_name = name; params; body } :: !entities;
        loop ()
    | _ ->
        top := parse_stmt st :: !top;
        loop ()
  in
  loop ();
  { Ast.entities = List.rev !entities; top = List.rev !top }
