type token =
  | IDENT of string
  | NUMBER of float
  | STRING of string
  | LPAREN | RPAREN
  | COMMA
  | ASSIGN                       (* = *)
  | OP of string                 (* + - * / == != < <= > >= && || ! *)
  | KW_ENT | KW_IF | KW_ELSE | KW_END | KW_FOR | KW_TO
  | KW_CHOOSE | KW_ORELSE | KW_TRUE | KW_FALSE
  | NEWLINE
  | EOF
[@@deriving show { with_path = false }, eq]

type t = { tok : token; line : int; col : int }

module Diag = Amg_robust.Diag

let keyword = function
  | "ENT" -> Some KW_ENT
  | "IF" -> Some KW_IF
  | "ELSE" -> Some KW_ELSE
  | "END" -> Some KW_END
  | "FOR" -> Some KW_FOR
  | "TO" -> Some KW_TO
  | "CHOOSE" -> Some KW_CHOOSE
  | "ORELSE" -> Some KW_ORELSE
  | "TRUE" -> Some KW_TRUE
  | "FALSE" -> Some KW_FALSE
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize ?file src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let line_start = ref 0 in
  let tok_start = ref 0 in
  (* 1-based column of the current token, for diagnostics; token records
     keep their historical 0-based [col]. *)
  let fail ~code ?hint fmt =
    let span = Diag.span ?file ~col:(!tok_start - !line_start + 1) !line in
    Diag.failf ~span ?hint Diag.Lang ~code fmt
  in
  let emit tok =
    toks := { tok; line = !line; col = !tok_start - !line_start } :: !toks
  in
  let last_real () =
    match !toks with { tok = NEWLINE; _ } :: _ | [] -> None | { tok; _ } :: _ -> Some tok
  in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    tok_start := !i;
    if c = '\n' then begin
      (* Suppress empty lines and leading newlines. *)
      (match last_real () with Some _ -> emit NEWLINE | None -> ());
      incr line;
      incr i;
      line_start := !i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '"' then begin
      let j = ref (!i + 1) in
      let b = Buffer.create 16 in
      while !j < n && src.[!j] <> '"' do
        if src.[!j] = '\n' then
          fail ~code:"lang.lex.unterminated-string"
            ~hint:"close the string with '\"' before the end of the line"
            "unterminated string";
        Buffer.add_char b src.[!j];
        incr j
      done;
      if !j >= n then
        fail ~code:"lang.lex.unterminated-string"
          ~hint:"close the string with '\"' before the end of the line"
          "unterminated string";
      emit (STRING (Buffer.contents b));
      i := !j + 1
    end
    else if is_digit c || (c = '.' && !i + 1 < n && is_digit src.[!i + 1]) then begin
      let j = ref !i in
      while !j < n && (is_digit src.[!j] || src.[!j] = '.') do incr j done;
      let s = String.sub src !i (!j - !i) in
      (match float_of_string_opt s with
      | Some f -> emit (NUMBER f)
      | None ->
          fail ~code:"lang.lex.bad-number"
            ~hint:"numbers look like 12, 3.5 or .5 with a single decimal point"
            "bad number %S" s);
      i := !j
    end
    else if is_ident_start c then begin
      let j = ref !i in
      while !j < n && is_ident_char src.[!j] do incr j done;
      let s = String.sub src !i (!j - !i) in
      (match keyword s with Some k -> emit k | None -> emit (IDENT s));
      i := !j
    end
    else begin
      let two =
        if !i + 1 < n then Some (String.sub src !i 2) else None
      in
      match two with
      | Some (("==" | "!=" | "<=" | ">=" | "&&" | "||") as op) ->
          emit (OP op);
          i := !i + 2
      | _ -> (
          match c with
          | '(' -> emit LPAREN; incr i
          | ')' -> emit RPAREN; incr i
          | ',' -> emit COMMA; incr i
          | '=' -> emit ASSIGN; incr i
          | '+' | '-' | '*' | '/' | '<' | '>' | '!' ->
              emit (OP (String.make 1 c));
              incr i
          | _ ->
              fail ~code:"lang.lex.unexpected-char"
                ~hint:"only identifiers, numbers, strings, operators and \
                       parentheses are valid outside comments"
                "unexpected character %C" c)
    end
  done;
  tok_start := n;
  (match last_real () with Some _ -> emit NEWLINE | None -> ());
  emit EOF;
  List.rev !toks
