(* Interpreter for the layout language.

   "The source code is automatically translated into C++" in the paper; here
   the interpreter drives the same primitive layer (Amg_core.Prim and the
   successive compactor) that the OCaml eDSL uses. *)

module Lobj = Amg_layout.Lobj
module Rect = Amg_geometry.Rect
module Dir = Amg_geometry.Dir
module Units = Amg_geometry.Units
module Env = Amg_core.Env
module Prim = Amg_core.Prim
module Optimize = Amg_core.Optimize
module Diag = Amg_robust.Diag

(* Runtime failures carry a structured diagnostic (no source span: the AST
   keeps no positions; the code pinpoints the failing construct instead). *)
let error_code ?hint code fmt = Diag.failf ?hint Diag.Lang ~code fmt

let error fmt = error_code "lang.run.error" fmt

type recorded = { base : Lobj.t; steps : Optimize.step list }

type recorder = {
  mutable rec_base : Lobj.t option;  (* depth-1 object before the first compact *)
  mutable rec_steps : Optimize.step list;  (* reversed *)
  mutable rec_shapes : int;  (* shape count after the last recorded compact *)
  mutable rec_invalid : string option;
}

type frame = {
  ctx : ctx;
  vars : (string, Value.t) Hashtbl.t;
  mutable obj : Lobj.t;
}

and ctx = {
  env : Env.t;
  program : Ast.program;
  out : Buffer.t;
  mutable depth : int;  (* entity call depth, to catch runaway recursion *)
  mutable recorder : recorder option;
}

let max_depth = 200

let create_ctx env program =
  { env; program; out = Buffer.create 256; depth = 0; recorder = None }

let output ctx = Buffer.contents ctx.out

let new_frame ctx name =
  let vars = Hashtbl.create 16 in
  List.iter
    (fun d -> Hashtbl.replace vars (Dir.to_string d) (Value.Str (Dir.to_string d)))
    Dir.all;
  { ctx; vars; obj = Lobj.create name }

let lookup frame name =
  match Hashtbl.find_opt frame.vars name with
  | Some v -> v
  | None ->
      error_code "lang.run.unbound-identifier"
        ~hint:"assign the variable before use, or check its spelling"
        "unbound identifier %s" name

(* --- argument plumbing for builtins and entities --- *)

type args = { positional : Value.t list; keyword : (string * Value.t) list }

let split_args frame (raw : Ast.arg list) eval =
  let positional, keyword =
    List.fold_left
      (fun (pos, kw) (a : Ast.arg) ->
        let v = eval frame a.Ast.arg_value in
        match a.Ast.arg_name with
        | None -> (v :: pos, kw)
        | Some n -> (pos, (n, v) :: kw))
      ([], []) raw
  in
  { positional = List.rev positional; keyword = List.rev keyword }

let kw args name = List.assoc_opt name args.keyword

let pos args i = List.nth_opt args.positional i

(* An argument that may come positionally (index i) or by keyword. *)
let arg args i name =
  match kw args name with Some v -> Some v | None -> pos args i

let as_num what = function
  | Some (Value.Num f) -> Some f
  | Some Value.Unit | None -> None
  | Some v ->
      error_code "lang.run.type-error" "%s: expected a number, got %s" what
        (Value.type_name v)

let as_str what = function
  | Some (Value.Str s) -> Some s
  | Some Value.Unit | None -> None
  | Some v ->
      error_code "lang.run.type-error" "%s: expected a string, got %s" what
        (Value.type_name v)

let as_obj what = function
  | Some (Value.Obj o) -> Some o
  | Some Value.Unit | None -> None
  | Some v ->
      error_code "lang.run.type-error" "%s: expected an object, got %s" what
        (Value.type_name v)

let req what = function
  | Some v -> v
  | None ->
      error_code "lang.run.missing-argument" "%s: missing required argument"
        what

let nm f = Units.of_um f

let nm_opt = Option.map nm

(* --- builtins --- *)

let builtin_inbox frame args =
  let layer = req "INBOX layer" (as_str "INBOX layer" (arg args 0 "layer")) in
  let w = nm_opt (as_num "INBOX W" (arg args 1 "W")) in
  let l = nm_opt (as_num "INBOX L" (arg args 2 "L")) in
  let net = as_str "INBOX net" (kw args "net") in
  let _ = Prim.inbox frame.ctx.env frame.obj ~layer ?w ?l ?net () in
  Value.Unit

let builtin_array frame args =
  let layer = req "ARRAY layer" (as_str "ARRAY layer" (arg args 0 "layer")) in
  let net = as_str "ARRAY net" (kw args "net") in
  let _ = Prim.array frame.ctx.env frame.obj ~layer ?net () in
  Value.Unit

let builtin_tworects frame args =
  let la = req "TWORECTS layer a" (as_str "TWORECTS" (arg args 0 "a")) in
  let lb = req "TWORECTS layer b" (as_str "TWORECTS" (arg args 1 "b")) in
  let w = nm (req "TWORECTS W" (as_num "TWORECTS W" (arg args 2 "W"))) in
  let l = nm (req "TWORECTS L" (as_num "TWORECTS L" (arg args 3 "L"))) in
  let net_a = as_str "TWORECTS neta" (kw args "neta") in
  let net_b = as_str "TWORECTS netb" (kw args "netb") in
  let orient =
    match as_str "TWORECTS orient" (kw args "orient") with
    | Some "H" -> `Horizontal
    | Some "V" | None -> `Vertical
    | Some o -> error "TWORECTS: bad orient %S (want \"V\" or \"H\")" o
  in
  let _ = Prim.tworects frame.ctx.env frame.obj ~layer_a:la ~layer_b:lb ~w ~l ?net_a ?net_b ~orient () in
  Value.Unit

let builtin_around frame args =
  let layer = req "AROUND layer" (as_str "AROUND layer" (arg args 0 "layer")) in
  let margin = nm_opt (as_num "AROUND margin" (kw args "margin")) in
  let net = as_str "AROUND net" (kw args "net") in
  let _ = Prim.around frame.ctx.env frame.obj ~layer ?margin ?net () in
  Value.Unit

let builtin_ring frame args =
  let layer = req "RING layer" (as_str "RING layer" (arg args 0 "layer")) in
  let width = nm_opt (as_num "RING width" (kw args "width")) in
  let margin = nm_opt (as_num "RING margin" (kw args "margin")) in
  let net = as_str "RING net" (kw args "net") in
  let _ = Prim.ring frame.ctx.env frame.obj ~layer ?width ?margin ?net () in
  Value.Unit

let parse_dir what s =
  match Dir.of_string s with
  | Some d -> d
  | None -> error "%s: bad direction %S" what s

(* --- compact-order recording (for amgen --optimize) ---

   When a recorder is armed, every compact executed at entity call depth 1
   (the entity amgen instantiates) is captured as an {!Optimize.step} so the
   same sequence can be replayed in permuted orders.  A replay is only
   faithful when the depth-1 geometry comes exclusively from compacts, so
   shapes drawn between or after compacts invalidate the recording (with a
   reason) instead of risking a divergent layout; a backtracking CHOOSE
   rolls the recorder back together with the frame. *)

let invalidate r why = if r.rec_invalid = None then r.rec_invalid <- Some why

let active_recorder frame =
  match frame.ctx.recorder with
  | Some r when frame.ctx.depth = 1 && r.rec_invalid = None -> Some r
  | _ -> None

let record_compact frame ~obj ~dir ~ignore_layers ~align ~variable_edges =
  match active_recorder frame with
  | None -> ()
  | Some r ->
      let count = Lobj.shape_count frame.obj in
      (match r.rec_base with
      | None ->
          r.rec_base <- Some (Lobj.copy frame.obj);
          r.rec_shapes <- count
      | Some _ ->
          if count <> r.rec_shapes then
            invalidate r "shapes were drawn between compact calls");
      if r.rec_invalid = None then
        r.rec_steps <-
          Optimize.step ~ignore_layers ~align ~variable_edges (Lobj.copy obj)
            dir
          :: r.rec_steps

let record_compact_done frame =
  match active_recorder frame with
  | None -> ()
  | Some r -> r.rec_shapes <- Lobj.shape_count frame.obj

let builtin_compact frame args =
  let obj = req "compact object" (as_obj "compact object" (pos args 0)) in
  let dir =
    parse_dir "compact"
      (req "compact direction" (as_str "compact direction" (pos args 1)))
  in
  (* Remaining positional strings are the not-relevant layers. *)
  let ignore_layers =
    List.filteri (fun i _ -> i >= 2) args.positional
    |> List.map (function
         | Value.Str s -> s
         | v -> error "compact: ignore layers must be strings, got %s" (Value.type_name v))
  in
  let align =
    match as_str "compact align" (kw args "align") with
    | Some "CENTER" -> `Center
    | Some "MIN" -> `Min
    | Some "MAX" -> `Max
    | Some "KEEP" | None -> `Keep
    | Some a -> error "compact: bad align %S" a
  in
  let variable_edges =
    match kw args "varedges" with
    | Some (Value.Bool b) -> b
    | Some v -> error "compact: varedges must be TRUE or FALSE, got %s" (Value.type_name v)
    | None -> true
  in
  record_compact frame ~obj ~dir ~ignore_layers ~align ~variable_edges;
  Amg_compact.Successive.compact ~rules:(Env.rules frame.ctx.env) ~into:frame.obj
    ~ignore_layers ~align ~variable_edges obj dir;
  record_compact_done frame;
  Value.Unit

let builtin_port frame args =
  let name = req "PORT name" (as_str "PORT name" (arg args 0 "name")) in
  let net = req "PORT net" (as_str "PORT net" (arg args 1 "net")) in
  let layer = req "PORT layer" (as_str "PORT layer" (arg args 2 "layer")) in
  let shapes =
    List.filter
      (fun (s : Amg_layout.Shape.t) -> Amg_layout.Shape.on_layer s layer)
      (Lobj.shapes_on_net frame.obj net)
  in
  (match Rect.hull_list (List.map (fun (s : Amg_layout.Shape.t) -> s.rect) shapes) with
  | Some rect -> ignore (Lobj.add_port frame.obj ~name ~net ~layer ~rect)
  | None -> error "PORT %s: no shapes of net %s on layer %s" name net layer);
  Value.Unit

(* RENAME_NET(obj, "from", "to"): connect a sub-object's formal net to the
   parent's actual net before compacting it in. *)
let builtin_rename_net _frame args =
  let obj = req "RENAME_NET object" (as_obj "RENAME_NET object" (pos args 0)) in
  let from_ = req "RENAME_NET from" (as_str "RENAME_NET" (pos args 1)) in
  let to_ = req "RENAME_NET to" (as_str "RENAME_NET" (pos args 2)) in
  Lobj.rename_net obj ~from_ ~to_;
  Value.Unit

let builtin_mirror _frame args =
  let obj = req "MIRROR object" (as_obj "MIRROR object" (pos args 0)) in
  let axis = req "MIRROR axis" (as_str "MIRROR axis" (pos args 1)) in
  (match axis with
  | "X" -> Lobj.transform obj (Amg_geometry.Transform.of_orientation Amg_geometry.Transform.MX)
  | "Y" -> Lobj.transform obj (Amg_geometry.Transform.of_orientation Amg_geometry.Transform.MY)
  | a -> error "MIRROR: bad axis %S (want \"X\" or \"Y\")" a);
  Value.Unit

let builtin_print frame args =
  List.iter
    (fun v -> Buffer.add_string frame.ctx.out (Fmt.str "%a " Value.pp v))
    args.positional;
  Buffer.add_char frame.ctx.out '\n';
  Value.Unit

(* Geometry queries: measure an object (or the current one) so that module
   code can choose topology variants conditionally — "due to design-rule
   constraints, the designer has to specify different topology
   alternatives" (§2.1).  All results are micrometres / um^2. *)
let measured frame args =
  match as_obj "measure" (pos args 0) with Some o -> o | None -> frame.obj

let builtin_width_of frame args =
  match Lobj.bbox (measured frame args) with
  | Some r -> Value.Num (Units.to_um (Rect.width r))
  | None -> Value.Num 0.

let builtin_height_of frame args =
  match Lobj.bbox (measured frame args) with
  | Some r -> Value.Num (Units.to_um (Rect.height r))
  | None -> Value.Num 0.

let builtin_area_of frame args =
  Value.Num (float_of_int (Lobj.bbox_area (measured frame args)) /. 1.0e6)

(* REJECT("message"): explicit design-rule style rejection, for use inside
   CHOOSE branches. *)
let builtin_reject _frame args =
  let msg =
    Option.value ~default:"rejected" (as_str "REJECT message" (pos args 0))
  in
  Env.reject "%s" msg

(* Numeric helper builtins: module code sizes legs and counts fingers. *)
let numeric_args what args =
  List.map
    (function
      | Value.Num f -> f
      | v -> error "%s: expected numbers, got %s" what (Value.type_name v))
    args.positional

let builtin_min _frame args =
  match numeric_args "MIN" args with
  | [] -> error "MIN: needs at least one argument"
  | x :: xs -> Value.Num (List.fold_left Float.min x xs)

let builtin_max _frame args =
  match numeric_args "MAX" args with
  | [] -> error "MAX: needs at least one argument"
  | x :: xs -> Value.Num (List.fold_left Float.max x xs)

let builtin_abs _frame args =
  match numeric_args "ABS" args with
  | [ x ] -> Value.Num (Float.abs x)
  | _ -> error "ABS: needs exactly one argument"

let builtin_floor _frame args =
  match numeric_args "FLOOR" args with
  | [ x ] -> Value.Num (Float.of_int (int_of_float (Float.floor x)))
  | _ -> error "FLOOR: needs exactly one argument"

let builtin_ceil _frame args =
  match numeric_args "CEIL" args with
  | [ x ] -> Value.Num (Float.of_int (int_of_float (Float.ceil x)))
  | _ -> error "CEIL: needs exactly one argument"

(* --- routing builtins (§2.4's "several routing routines") --- *)

(* WIRE(layer, width, x0,y0, x1,y1, ... , net=): an orthogonal centre-line
   path rendered as overlapping rectangles; coordinates in micrometres
   relative to the current object's origin. *)
let builtin_wire frame args =
  let layer = req "WIRE layer" (as_str "WIRE layer" (pos args 0)) in
  let width = nm (req "WIRE width" (as_num "WIRE width" (pos args 1))) in
  let net = as_str "WIRE net" (kw args "net") in
  let coords =
    List.filteri (fun i _ -> i >= 2) args.positional
    |> List.map (function
         | Value.Num f -> nm f
         | v -> error "WIRE: coordinates must be numbers, got %s" (Value.type_name v))
  in
  let rec pair = function
    | [] -> []
    | x :: y :: rest -> (x, y) :: pair rest
    | [ _ ] -> error "WIRE: odd number of coordinates"
  in
  let points = pair coords in
  if List.length points < 2 then error "WIRE: need at least two points";
  List.iter2
    (fun (x0, y0) (x1, y1) ->
      if x0 <> x1 && y0 <> y1 then
        error "WIRE: segment (%g,%g)-(%g,%g) is diagonal" (Units.to_um x0)
          (Units.to_um y0) (Units.to_um x1) (Units.to_um y1))
    (List.filteri (fun i _ -> i < List.length points - 1) points)
    (List.tl points);
  let _ = Amg_route.Path.draw frame.obj ~layer ~width ?net points in
  Value.Unit

(* VIA(x, y, net=): metal1-metal2 via stack centred at the point. *)
let builtin_via frame args =
  let x = nm (req "VIA x" (as_num "VIA x" (arg args 0 "x"))) in
  let y = nm (req "VIA y" (as_num "VIA y" (arg args 1 "y"))) in
  let net = as_str "VIA net" (kw args "net") in
  let _ = Amg_route.Wire.via frame.ctx.env frame.obj ~at:(x, y) ?net () in
  Value.Unit

(* CONTACT_AT(x, y, landing, net=): single contact landing on the layer. *)
let builtin_contact_at frame args =
  let x = nm (req "CONTACT_AT x" (as_num "CONTACT_AT x" (arg args 0 "x"))) in
  let y = nm (req "CONTACT_AT y" (as_num "CONTACT_AT y" (arg args 1 "y"))) in
  let landing =
    req "CONTACT_AT landing" (as_str "CONTACT_AT landing" (arg args 2 "landing"))
  in
  let net = as_str "CONTACT_AT net" (kw args "net") in
  let _ =
    Amg_route.Wire.contact_at frame.ctx.env frame.obj ~at:(x, y) ~landing ?net ()
  in
  Value.Unit

(* CONNECT("porta", "portb", width=): L-shaped same-layer connection between
   two named ports of the current object. *)
let builtin_connect frame args =
  let pa = req "CONNECT port a" (as_str "CONNECT port a" (pos args 0)) in
  let pb = req "CONNECT port b" (as_str "CONNECT port b" (pos args 1)) in
  let width = nm_opt (as_num "CONNECT width" (kw args "width")) in
  let port what name =
    match Lobj.port frame.obj name with
    | Some p -> p
    | None -> error "CONNECT: %s port %S not found" what name
  in
  let _ =
    Amg_route.Wire.connect_ports frame.ctx.env frame.obj ?width
      (port "first" pa) (port "second" pb)
  in
  Value.Unit

(* --- evaluation --- *)

let rec eval_expr frame (e : Ast.expr) : Value.t =
  match e with
  | Ast.Num f -> Value.Num f
  | Ast.Str s -> Value.Str s
  | Ast.Bool b -> Value.Bool b
  | Ast.Ident name -> lookup frame name
  | Ast.Unop (op, e) -> (
      let v = eval_expr frame e in
      match (op, v) with
      | Ast.Neg, Value.Num f -> Value.Num (-.f)
      | Ast.Not, v -> Value.Bool (not (Value.truthy v))
      | Ast.Neg, v -> error "cannot negate a %s" (Value.type_name v))
  | Ast.Binop (op, a, b) -> eval_binop frame op a b
  | Ast.Call (name, raw_args) -> eval_call frame name raw_args

and eval_binop frame op a b =
  let va = eval_expr frame a in
  match op with
  | Ast.And -> if Value.truthy va then Value.Bool (Value.truthy (eval_expr frame b)) else Value.Bool false
  | Ast.Or -> if Value.truthy va then Value.Bool true else Value.Bool (Value.truthy (eval_expr frame b))
  | _ -> (
      let vb = eval_expr frame b in
      match (op, va, vb) with
      | Ast.Add, Value.Num x, Value.Num y -> Value.Num (x +. y)
      | Ast.Sub, Value.Num x, Value.Num y -> Value.Num (x -. y)
      | Ast.Mul, Value.Num x, Value.Num y -> Value.Num (x *. y)
      | Ast.Div, Value.Num x, Value.Num y ->
          if y = 0. then error_code "lang.run.division-by-zero" "division by zero"
          else Value.Num (x /. y)
      | Ast.Add, Value.Str x, Value.Str y -> Value.Str (x ^ y)
      (* String + number builds derived net names ("seg" + i) in loops. *)
      | Ast.Add, Value.Str x, Value.Num y ->
          Value.Str
            (x
            ^
            if Float.is_integer y then string_of_int (int_of_float y)
            else string_of_float y)
      | Ast.Eq, Value.Num x, Value.Num y -> Value.Bool (x = y)
      | Ast.Eq, Value.Str x, Value.Str y -> Value.Bool (String.equal x y)
      | Ast.Eq, Value.Bool x, Value.Bool y -> Value.Bool (x = y)
      | Ast.Ne, Value.Num x, Value.Num y -> Value.Bool (x <> y)
      | Ast.Ne, Value.Str x, Value.Str y -> Value.Bool (not (String.equal x y))
      | Ast.Lt, Value.Num x, Value.Num y -> Value.Bool (x < y)
      | Ast.Le, Value.Num x, Value.Num y -> Value.Bool (x <= y)
      | Ast.Gt, Value.Num x, Value.Num y -> Value.Bool (x > y)
      | Ast.Ge, Value.Num x, Value.Num y -> Value.Bool (x >= y)
      | _, va, vb ->
          error "bad operands for %s: %s and %s" (Ast.show_binop op)
            (Value.type_name va) (Value.type_name vb))

and eval_call frame name raw_args =
  let args () = split_args frame raw_args eval_expr in
  match name with
  | "INBOX" -> builtin_inbox frame (args ())
  | "ARRAY" -> builtin_array frame (args ())
  | "TWORECTS" -> builtin_tworects frame (args ())
  | "AROUND" -> builtin_around frame (args ())
  | "RING" -> builtin_ring frame (args ())
  | "compact" | "COMPACT" -> builtin_compact frame (args ())
  | "PORT" -> builtin_port frame (args ())
  | "RENAME_NET" -> builtin_rename_net frame (args ())
  | "MIRROR" -> builtin_mirror frame (args ())
  | "PRINT" -> builtin_print frame (args ())
  | "WIDTH_OF" -> builtin_width_of frame (args ())
  | "HEIGHT_OF" -> builtin_height_of frame (args ())
  | "AREA_OF" -> builtin_area_of frame (args ())
  | "REJECT" -> builtin_reject frame (args ())
  | "WIRE" -> builtin_wire frame (args ())
  | "VIA" -> builtin_via frame (args ())
  | "CONTACT_AT" -> builtin_contact_at frame (args ())
  | "CONNECT" -> builtin_connect frame (args ())
  | "MIN" -> builtin_min frame (args ())
  | "MAX" -> builtin_max frame (args ())
  | "ABS" -> builtin_abs frame (args ())
  | "FLOOR" -> builtin_floor frame (args ())
  | "CEIL" -> builtin_ceil frame (args ())
  | _ -> (
      match Ast.find_entity frame.ctx.program name with
      | Some entity -> call_entity frame.ctx name entity raw_args frame
      | None ->
          error_code "lang.run.unknown-name"
            ~hint:"builtins are upper-case (INBOX, WIRE, …); entities must \
                   be declared with ENT before use"
            "unknown function or entity %s" name)

and call_entity ctx name (entity : Ast.entity) raw_args caller =
  let args = split_args caller raw_args eval_expr in
  if ctx.depth >= max_depth then
    error_code "lang.run.recursion-limit"
      "entity call depth exceeds %d (runaway recursion via %s?)" max_depth name;
  ctx.depth <- ctx.depth + 1;
  Fun.protect ~finally:(fun () -> ctx.depth <- ctx.depth - 1) @@ fun () ->
  let callee = new_frame ctx name in
  (* Bind parameters: positional in declaration order, then keywords;
     omitted optional parameters become Unit. *)
  List.iteri
    (fun i (p : Ast.param) ->
      let v =
        match kw args p.Ast.pname with
        | Some v -> Some v
        | None -> pos args i
      in
      match v with
      | Some v -> Hashtbl.replace callee.vars p.Ast.pname v
      | None ->
          if p.Ast.optional then Hashtbl.replace callee.vars p.Ast.pname Value.Unit
          else
            error_code "lang.run.missing-argument"
              "entity %s: missing required parameter %s" name p.Ast.pname)
    entity.Ast.params;
  exec_block callee entity.Ast.body;
  Value.Obj callee.obj

and exec_block frame stmts = List.iter (exec_stmt frame) stmts

and exec_stmt frame (s : Ast.stmt) =
  match s with
  | Ast.Assign (x, e) -> (
      match eval_expr frame e with
      | Value.Obj o ->
          (* Binding an object copies its data structure (§2.5:
             "trans2 = trans1 // copy of trans1"). *)
          Hashtbl.replace frame.vars x (Value.Obj (Lobj.copy ~name:x o))
      | v -> Hashtbl.replace frame.vars x v)
  | Ast.Expr e -> ignore (eval_expr frame e)
  | Ast.If (cond, then_b, else_b) ->
      if Value.truthy (eval_expr frame cond) then exec_block frame then_b
      else exec_block frame else_b
  | Ast.For (var, lo, hi, body) -> (
      match (eval_expr frame lo, eval_expr frame hi) with
      | Value.Num l, Value.Num h ->
          let l = int_of_float l and h = int_of_float h in
          for i = l to h do
            Hashtbl.replace frame.vars var (Value.Num (float_of_int i));
            exec_block frame body
          done
      | _ -> error "FOR: bounds must be numbers")
  | Ast.Choose branches ->
      (* Backtracking (§2.1): try each branch; on a design-rule rejection
         roll the frame back and try the next one.  An armed recorder is
         rolled back with the frame: recorded step objects are frozen
         copies, so restoring the lists restores the recording exactly. *)
      let snapshot_obj = Lobj.copy frame.obj in
      let snapshot_vars = Hashtbl.copy frame.vars in
      let rec_snapshot =
        match frame.ctx.recorder with
        | Some r when frame.ctx.depth = 1 ->
            Some (r, r.rec_base, r.rec_steps, r.rec_shapes, r.rec_invalid)
        | _ -> None
      in
      let restore () =
        frame.obj <- Lobj.copy snapshot_obj;
        Hashtbl.reset frame.vars;
        Hashtbl.iter (fun k v -> Hashtbl.replace frame.vars k v) snapshot_vars;
        match rec_snapshot with
        | Some (r, base, steps, shapes, invalid) ->
            r.rec_base <- base;
            r.rec_steps <- steps;
            r.rec_shapes <- shapes;
            r.rec_invalid <- invalid
        | None -> ()
      in
      let rec try_branches = function
        | [] ->
            error_code "lang.run.choose-exhausted"
              ~hint:"every ORELSE alternative ended in REJECT or a \
                     design-rule rejection; relax the constraints or add a \
                     fallback branch"
              "CHOOSE: every alternative was rejected"
        | b :: rest -> (
            try exec_block frame b
            with Env.Rejected _ ->
              restore ();
              try_branches rest)
      in
      try_branches branches

(* --- entry points --- *)

let run env program =
  let ctx = create_ctx env program in
  let top = new_frame ctx "top" in
  exec_block top program.Ast.top;
  (ctx, top.vars)

let build_ctx ctx entity_name raw_args =
  match Ast.find_entity ctx.program entity_name with
  | None ->
      error_code "lang.run.unknown-name"
        ~hint:"entity names are case-sensitive; list them with 'amgen list'"
        "unknown entity %s" entity_name
  | Some entity -> (
      let caller = new_frame ctx "caller" in
      let args =
        List.map
          (fun (name, v) ->
            { Ast.arg_name = Some name;
              arg_value =
                (match v with
                | Value.Num f -> Ast.Num f
                | Value.Str s -> Ast.Str s
                | Value.Bool b -> Ast.Bool b
                | Value.Unit | Value.Obj _ ->
                    error "build: only scalar arguments supported") })
          raw_args
      in
      match call_entity ctx entity_name entity args caller with
      | Value.Obj o -> o
      | _ -> assert false)

let build env program entity_name raw_args =
  build_ctx (create_ctx env program) entity_name raw_args

let finish_recording ctx o =
  match ctx.recorder with
  | None -> Error "recorder was not armed"
  | Some r -> (
      match r.rec_invalid with
      | Some why -> Error why
      | None -> (
          match r.rec_base with
          | None -> Error "entity performed no compacts"
          | Some base ->
              if Lobj.shape_count o <> r.rec_shapes then
                Error "shapes were drawn after the last compact"
              else (
                match List.rev r.rec_steps with
                | [] | [ _ ] ->
                    Error "fewer than two compacts, nothing to reorder"
                | steps -> Ok { base; steps })))

let build_recorded env program entity_name raw_args =
  let ctx = create_ctx env program in
  ctx.recorder <-
    Some { rec_base = None; rec_steps = []; rec_shapes = 0; rec_invalid = None };
  let o = build_ctx ctx entity_name raw_args in
  (o, finish_recording ctx o)

let parse_and_build ?file env src entity_name args =
  build env (Parser.parse_program ?file src) entity_name args

let parse_and_build_recorded ?file env src entity_name args =
  build_recorded env (Parser.parse_program ?file src) entity_name args
