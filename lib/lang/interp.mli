(** Interpreter for the procedural layout description language.

    Entity bodies build an implicit current object through the primitive
    functions; [compact(obj, DIR, layers…)] places sub-objects with the
    successive compactor; assignment of an object value copies its data
    structure; [CHOOSE]/[ORELSE] backtracks over design-rule rejections.

    Runtime failures raise {!Amg_robust.Diag.Fail} carrying a structured
    diagnostic (subsystem [Lang], codes under ["lang.run."]). *)

type ctx
(** Interpreter context: environment, program, and collected PRINT output. *)

type frame

type recorded = {
  base : Amg_layout.Lobj.t;
      (** Copy of the entity's object just before its first top-level
          compact (shapes drawn before any compact end up here). *)
  steps : Amg_core.Optimize.step list;
      (** The entity's top-level compacts, in execution order, each with a
          frozen copy of its moving object — ready for
          {!Amg_core.Optimize.apply} / [optimize]. *)
}
(** A replayable record of an entity build, captured by
    {!build_recorded}. *)

val create_ctx : Amg_core.Env.t -> Ast.program -> ctx

val output : ctx -> string
(** Everything PRINT produced. *)

val run : Amg_core.Env.t -> Ast.program -> ctx * (string, Value.t) Hashtbl.t
(** Execute the top-level statements; returns the context and the top-level
    variable bindings (generated objects among them). *)

val build :
  Amg_core.Env.t ->
  Ast.program ->
  string ->
  (string * Value.t) list ->
  Amg_layout.Lobj.t
(** [build env program entity args] instantiates one entity with keyword
    arguments and returns its layout object.
    @raise Amg_robust.Diag.Fail on type or arity errors, unknown entities.
    @raise Amg_core.Env.Rejected when generation fails every variant. *)

val build_recorded :
  Amg_core.Env.t ->
  Ast.program ->
  string ->
  (string * Value.t) list ->
  Amg_layout.Lobj.t * (recorded, string) result
(** {!build}, additionally recording the entity's top-level compacts for
    order optimization.  The layout is always the normal build result; the
    second component is [Ok] only when a replay would be faithful — the
    entity ran at least two top-level compacts and drew no shapes between
    or after them (ports are fine; they are transplanted separately).
    Otherwise [Error reason] explains why the build cannot be reordered. *)

val parse_and_build :
  ?file:string ->
  Amg_core.Env.t ->
  string ->
  string ->
  (string * Value.t) list ->
  Amg_layout.Lobj.t
(** Parse source text, then {!build}.  [?file] names the source in parse
    diagnostics. *)

val parse_and_build_recorded :
  ?file:string ->
  Amg_core.Env.t ->
  string ->
  string ->
  (string * Value.t) list ->
  Amg_layout.Lobj.t * (recorded, string) result
(** Parse source text, then {!build_recorded}. *)
