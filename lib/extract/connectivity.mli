(** Electrical connectivity extraction from a layout object.

    Diffusion is split by gate crossings (the channel interrupts it) and
    resistor bodies under [resmark] do not conduct; same-layer touching
    pieces merge, and contact/via cuts merge their overlapped pieces across
    layers. *)

type piece = {
  p_layer : string;
  p_rect : Amg_geometry.Rect.t;
  p_net : string option;
  p_src : int;
  p_conducting : bool;
}

type t

val build : tech:Amg_tech.Technology.t -> Amg_layout.Lobj.t -> t

val find : t -> int -> int
(** Union-find root of a piece index. *)

val node_at : t -> layer:string -> x:int -> y:int -> int option
(** The node of the conducting piece covering a point on a layer. *)

val net_name : t -> int -> string
(** The node's user net label, a ["a+b"] conflict marker, or ["n<id>"]. *)

val labeled_nets : t -> string list
(** All user net labels present in the layout (synthetic node names never
    appear here). *)

val shorts : t -> string list list
(** Label sets of nodes that carry more than one distinct user label. *)

val label_components : t -> string -> (string * Amg_geometry.Rect.t) list list
(** The connected components carrying the label, as (layer, rect) piece
    lists — for connectivity-repair passes. *)

val label_node_count : t -> string -> int
(** Number of distinct nodes carrying the label: 1 = physically one net. *)

val net_wirelength_um : t -> string -> float
(** Half-perimeter wirelength of a user net in micrometres: every node
    carrying the label contributes width + height of the hull of all its
    conducting pieces (labelled or not); a label-only multi-node net sums
    its islands.  0. when the label appears nowhere. *)

val node_count : t -> int

val split_diffusion :
  string list ->
  Amg_layout.Lobj.t ->
  Amg_layout.Shape.t ->
  Amg_geometry.Rect.t list
(** Exposed for tests: a diffusion shape minus every overlapping poly
    rectangle of the object, [poly_layers] naming the object's layers of
    kind {!Amg_tech.Layer.Poly}.  Overlaps are found with margin-0 index
    queries. *)
