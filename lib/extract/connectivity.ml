(* Electrical connectivity extraction.

   Conducting shapes are reduced to "pieces": diffusion rectangles are
   split by the gate poly crossing them (the channel interrupts the
   diffusion), and anything under a [resmark] is a resistor body and does
   not conduct.  Pieces merge when they touch on the same layer; contact
   and via cuts merge their overlapped landing/metal pieces across layers.
   Every resulting node carries the set of user net labels found on its
   pieces — more than one distinct label on a node is an extracted short. *)

module Rect = Amg_geometry.Rect
module Sindex = Amg_geometry.Sindex
module Technology = Amg_tech.Technology
module Layer = Amg_tech.Layer
module Lobj = Amg_layout.Lobj
module Shape = Amg_layout.Shape

type piece = {
  p_layer : string;
  p_rect : Rect.t;
  p_net : string option;
  p_src : int;          (* id of the originating shape *)
  p_conducting : bool;  (* false for resistor bodies *)
}

type t = {
  pieces : piece array;
  parent : int array;
  tech : Technology.t;
  labels : (int, string list) Hashtbl.t; (* root -> sorted distinct labels *)
}

let rec find t i =
  let p = t.parent.(i) in
  if p = i then i
  else begin
    let r = find t p in
    t.parent.(i) <- r;
    r
  end

let union t i j =
  let ri = find t i and rj = find t j in
  if ri <> rj then t.parent.(ri) <- rj

(* Split the diffusion shapes by every overlapping poly rectangle.  Only
   polys meeting the diffusion can split it, so its margin-0 candidates
   are the only ones examined; they are applied in id (= insertion) order
   like the full scan, so the resulting decomposition is identical. *)
let split_diffusion poly_layers obj (s : Shape.t) =
  let gates =
    List.concat_map
      (fun l ->
        List.filter
          (fun (p : Shape.t) -> Rect.overlaps p.Shape.rect s.Shape.rect)
          (Lobj.near obj ~layer:l s.Shape.rect ~margin:0))
      poly_layers
    |> List.sort (fun (a : Shape.t) (b : Shape.t) ->
           Int.compare a.Shape.id b.Shape.id)
    |> List.map (fun (p : Shape.t) -> p.Shape.rect)
  in
  List.fold_left
    (fun acc g -> List.concat_map (fun r -> Rect.subtract r g) acc)
    [ s.Shape.rect ] gates

let build ~tech obj =
  let shapes = Lobj.shapes obj in
  let poly_layers =
    List.filter
      (fun l ->
        match Technology.layer tech l with
        | Some tl -> tl.Layer.kind = Layer.Poly
        | None -> false)
      (Lobj.layers obj)
  in
  let in_resmark r =
    List.exists
      (fun (m : Shape.t) -> Rect.contains_rect m.Shape.rect r)
      (Lobj.near obj ~layer:"resmark" r ~margin:0)
  in
  let pieces = ref [] in
  let add (s : Shape.t) rect =
    pieces :=
      { p_layer = s.Shape.layer; p_rect = rect; p_net = s.Shape.net;
        p_src = s.Shape.id; p_conducting = not (in_resmark s.Shape.rect) }
      :: !pieces
  in
  List.iter
    (fun (s : Shape.t) ->
      match Technology.layer tech s.Shape.layer with
      (* Only routing layers conduct laterally; wells and implants are
         junction-isolated and never short the circuit. *)
      | Some l when l.Layer.conducting && Layer.is_routing l ->
          if Layer.is_active l then
            List.iter (add s) (split_diffusion poly_layers obj s)
          else add s s.Shape.rect
      | _ -> ())
    shapes;
  let pieces = Array.of_list (List.rev !pieces) in
  let t =
    { pieces; parent = Array.init (Array.length pieces) Fun.id; tech;
      labels = Hashtbl.create 32 }
  in
  let n = Array.length pieces in
  (* Per-layer spatial index over piece indices: piece merging is all
     touch/overlap tests, so each piece only ever interacts with its
     margin-0 candidates. *)
  let ix_by_layer = Hashtbl.create 8 in
  let ix_of layer =
    match Hashtbl.find_opt ix_by_layer layer with
    | Some ix -> ix
    | None ->
        let ix = Sindex.create () in
        Hashtbl.replace ix_by_layer layer ix;
        ix
  in
  Array.iteri (fun i p -> Sindex.insert (ix_of p.p_layer) i p.p_rect) pieces;
  let near_pieces layer rect =
    match Hashtbl.find_opt ix_by_layer layer with
    | None -> []
    | Some ix -> Sindex.query ix rect ~margin:0
  in
  (* Same-layer touching pieces conduct into one node.  Candidates arrive
     in ascending index order, so the union sequence — and with it every
     root index and synthetic node name — matches the all-pairs scan. *)
  for i = 0 to n - 1 do
    let a = pieces.(i) in
    if a.p_conducting then
      List.iter
        (fun j ->
          if j > i then begin
            let b = pieces.(j) in
            if b.p_conducting && Rect.touches a.p_rect b.p_rect then union t i j
          end)
        (near_pieces a.p_layer a.p_rect)
  done;
  (* Cuts merge across layers, but only between the layers the rules say
     the cut lands on (its enclosure rules) — a contact inside a big well
     rectangle does not make the well a wire. *)
  let rules = Technology.rules tech in
  List.iter
    (fun (c : Shape.t) ->
      match Technology.layer tech c.Shape.layer with
      | Some l when Layer.is_cut l ->
          let landing =
            List.map fst (Amg_tech.Rules.enclosing_layers rules ~inner:c.Shape.layer)
          in
          (* Sorted descending so the list reads exactly like the seed
             scan's accumulator (built by consing ascending indices);
             the union order below — and the resulting roots — depend
             on it. *)
          let hits =
            ref
              (List.concat_map
                 (fun l ->
                   List.filter
                     (fun i ->
                       let p = pieces.(i) in
                       p.p_conducting && Rect.overlaps p.p_rect c.Shape.rect)
                     (near_pieces l c.Shape.rect))
                 landing
              |> List.sort (fun i j -> Int.compare j i))
          in
          (* A cut reaches the metal(s) above and only the TOPMOST of the
             overlapped non-metal landing layers: a contact on a poly2 top
             plate does not also reach the poly bottom plate under it. *)
          let is_metal_piece i =
            match Technology.layer tech pieces.(i).p_layer with
            | Some pl -> Layer.is_metal pl
            | None -> false
          in
          let metals, landings = List.partition is_metal_piece !hits in
          let top_index layer = Technology.draw_index tech layer in
          let top_layer =
            List.fold_left
              (fun acc i ->
                let l = pieces.(i).p_layer in
                match acc with
                | None -> Some l
                | Some cur -> if top_index l > top_index cur then Some l else acc)
              None landings
          in
          let landings =
            match top_layer with
            | None -> []
            | Some l -> List.filter (fun i -> String.equal pieces.(i).p_layer l) landings
          in
          (match metals @ landings with
          | first :: rest -> List.iter (fun i -> union t first i) rest
          | [] -> ())
      | _ -> ())
    shapes;
  (* Collect labels. *)
  Array.iteri
    (fun i p ->
      if p.p_conducting then
        match p.p_net with
        | None -> ()
        | Some net ->
            let r = find t i in
            let cur = Option.value ~default:[] (Hashtbl.find_opt t.labels r) in
            if not (List.mem net cur) then
              Hashtbl.replace t.labels r (List.sort compare (net :: cur)))
    pieces;
  t

(* The node (union-find root) of the conducting piece at a point on a
   layer, if any. *)
let node_at t ~layer ~x ~y =
  let found = ref None in
  Array.iteri
    (fun i p ->
      if
        !found = None && p.p_conducting
        && String.equal p.p_layer layer
        && Rect.contains_point p.p_rect ~x ~y
      then found := Some (find t i))
    t.pieces;
  !found

(* Preferred net name of a node: its single label, a "name1+name2" short
   marker for conflicting labels, or a synthetic node name. *)
let net_name t node =
  match Hashtbl.find_opt t.labels node with
  | Some [ l ] -> l
  | Some ls -> String.concat "+" ls
  | None -> Printf.sprintf "n%d" node

(* Every user net label present anywhere in the layout; synthetic "n%d"
   names are never in this list, so it distinguishes internal nodes from
   user nets even when a user net happens to be called "n5". *)
let labeled_nets t =
  Hashtbl.fold (fun _root labels acc -> labels @ acc) t.labels []
  |> List.sort_uniq String.compare

(* Nodes carrying more than one distinct user label: extracted shorts. *)
let shorts t =
  Hashtbl.fold
    (fun _root labels acc ->
      match labels with _ :: _ :: _ -> labels :: acc | _ -> acc)
    t.labels []

(* Number of distinct nodes carrying the given user label: 1 means the net
   is physically one piece; more means it relies on labels only. *)
let label_node_count t label =
  let roots = Hashtbl.create 8 in
  Array.iteri
    (fun i p ->
      if p.p_conducting && p.p_net = Some label then
        Hashtbl.replace roots (find t i) ())
    t.pieces;
  Hashtbl.length roots

(* The connected components carrying the given label, each as its pieces'
   (layer, rect) list — used by repair passes to find and wire up
   disconnected islands of a net. *)
let label_components t label =
  let tbl = Hashtbl.create 8 in
  Array.iteri
    (fun i p ->
      if p.p_conducting && p.p_net = Some label then begin
        let r = find t i in
        let cur = Option.value ~default:[] (Hashtbl.find_opt tbl r) in
        Hashtbl.replace tbl r ((p.p_layer, p.p_rect) :: cur)
      end)
    t.pieces;
  Hashtbl.fold (fun _ pieces acc -> pieces :: acc) tbl []

(* Half-perimeter wirelength of a user net, in micrometres: for every
   node carrying the label, the hull of *all* conducting pieces unioned
   into that node (labelled or not — the wire is the whole node, not
   just its labelled shapes) contributes width + height.  A multi-node
   (label-only) net sums its islands, so repairs that physically join
   them change the number instead of hiding behind it. *)
let net_wirelength_um t label =
  let hulls = Hashtbl.create 8 in
  Array.iteri
    (fun i p ->
      if p.p_conducting && p.p_net = Some label then
        Hashtbl.replace hulls (find t i) None)
    t.pieces;
  Array.iteri
    (fun i p ->
      if p.p_conducting then
        let r = find t i in
        match Hashtbl.find_opt hulls r with
        | None -> ()
        | Some cur ->
            let h =
              match cur with
              | None -> p.p_rect
              | Some h -> Rect.hull h p.p_rect
            in
            Hashtbl.replace hulls r (Some h))
    t.pieces;
  Hashtbl.fold
    (fun _root hull acc ->
      match hull with
      | None -> acc
      | Some h -> acc +. (float (Rect.width h + Rect.height h) /. 1000.))
    hulls 0.

(* Distinct conducting nodes. *)
let node_count t =
  let roots = Hashtbl.create 32 in
  Array.iteri
    (fun i p -> if p.p_conducting then Hashtbl.replace roots (find t i) ())
    t.pieces;
  Hashtbl.length roots
