(** A work-stealing pool of OCaml 5 domains for the optimization mode.

    The optimization layer evaluates many independent full-layout
    candidates (order permutations, swap neighbourhoods, topology
    variants); a pool fans those evaluations out over domains while
    keeping results in input order, so reductions over them are
    deterministic regardless of scheduling.

    Concurrency contract: a task must only mutate state it owns.  Layout
    objects are mutable, so a task must work on its own {!Amg_layout.Lobj.copy}
    (and anything shared — step objects, cached prefixes, the technology
    deck — must only be read).  Tasks must not submit work to the pool
    they run on: {!map_array} is not re-entrant. *)

type t
(** A pool of [size t] participants: [size t - 1] worker domains plus the
    calling domain, which joins in whenever work is submitted. *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] worker domains
    ([domains] defaults to {!default_domains}; values < 1 are clamped
    to 1, so [create ~domains:1 ()] is a purely sequential pool that
    spawns nothing).  Unless {!set_oversubscribe}[ true] was called, the
    size is additionally clamped to {!recommended}: extra domains on an
    oversubscribed host only add GC-synchronization and scheduling cost,
    and determinism keeps results identical either way. *)

val size : t -> int
(** Number of participants, including the calling domain. *)

val self : unit -> int
(** Participant index of the calling domain: [0] for a pool's calling
    domain (and for any domain outside a pool), [k] for the [k]-th worker
    of the pool it belongs to.  Stable for a domain's whole life, so it can
    select participant-private state (e.g. a cache shard) without locks. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent.  Only for pools from
    {!create}; {!with_pool} pools are managed by the checkout registry. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with an exclusively owned pool of the requested
    size and returns it afterwards (also on exception).  Pools are checked
    out of a process-wide registry keyed by size — spawning domains costs
    milliseconds, so the workers (and their {!self} participant indices)
    persist across calls, idling on a condition variable between jobs.
    Parked pools are shut down at process exit.

    The checkout registry is mutex-guarded, so concurrent system threads
    (the serving daemon's request handlers) may call [with_pool] freely:
    each checkout hands out an exclusively owned pool, and two concurrent
    callers asking for the same size simply get two pools.  What is {e
    not} allowed is sharing one checked-out [t] between threads —
    {!map_array} is not re-entrant. *)

val warm : ?domains:int -> unit -> unit
(** Pre-spawn and park a pool of the requested size, so the first
    {!with_pool} caller does not pay the [Domain.spawn] latency inside
    its timed region.  The serving daemon warms its pool at startup. *)

val parked_count : unit -> int
(** Number of currently parked idle pools (daemon observability). *)

val steals : unit -> int
(** Cumulative number of tasks executed out of another participant's
    chunk, process-wide — a load-balance gauge for the serving metrics
    registry.  Steal totals depend on scheduling and are deliberately
    not part of the deterministic {!Amg_obs.Obs} counter stream. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array t f arr] applies [f] to every element, distributing the
    index range over the participants (each starts on its own contiguous
    chunk and steals from the others' chunks when its own runs dry).
    Results are returned in input order, so folding over them is
    deterministic no matter how the work was scheduled.  If any [f]
    raises, the exception of the lowest input index is re-raised in the
    caller after all tasks have run. *)

val map_array_cancel :
  t -> cancel:(unit -> bool) -> ('a -> 'b) -> 'a array -> 'b option array
(** Like {!map_array} with cooperative cancellation: [cancel] is polled once
    per task claim (on whichever domain claims it); once it returns [true],
    tasks not yet started are skipped and their slots stay [None].  Tasks
    already running always finish, so completed slots are in input order and
    any prefix-shaped reduction over them remains deterministic.  Errors
    propagate as in {!map_array}. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list

val recommended : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val default_domains : unit -> int
(** The process-wide default participant count used when [?domains] is
    omitted: the last value given to {!set_default_domains}, or
    {!recommended} if never set.  [amgen --jobs N] sets it. *)

val set_default_domains : int -> unit

val set_oversubscribe : bool -> unit
(** Lift (or restore) the {!recommended}-count clamp on pool sizes, so a
    requested size is honored exactly even beyond the host's core count.
    Off by default; the determinism test suites enable it to exercise
    real multi-domain scheduling on any host. *)
