(* Work-stealing domain pool.

   A job is an index range [0, total) split into one contiguous chunk per
   participant.  Each participant drains its own chunk with an atomic
   fetch-and-add, then steals from the other chunks in round-robin order;
   overshooting a chunk's bound is harmless, the claimed index is simply
   out of range and the scan moves on.  Tasks write their results into
   per-index slots, so the caller sees them in input order and every
   reduction over them is scheduling-independent.

   Workers idle on a condition variable between jobs; an epoch counter
   tells a worker returning from a job not to re-enter it.

   Observability: when [Obs] is recording, every job forks one probe
   strand per task slot, wraps each task in a [pool.task] span routed to
   its slot strand, and merges the strands back in slot order after the
   job — so the recorded event stream is identical for every domain
   count (only timestamps vary), matching the optimizer's determinism
   contract. *)

module Obs = Amg_obs.Obs
module Inject = Amg_robust.Inject

type job = {
  chunks : (int Atomic.t * int) array; (* per-participant (next, stop) *)
  run : int -> unit;                   (* never raises; records errors *)
  grain : int;                         (* indices claimed per RMW *)
  total : int;
  completed : int Atomic.t;
}

type t = {
  n : int;
  lock : Mutex.t;
  has_work : Condition.t;
  job_done : Condition.t;
  mutable job : job option;
  epoch : int Atomic.t;  (* bumped under the lock when a job is published *)
  stopping : bool Atomic.t;
  mutable workers : unit Domain.t list;
}

let size t = t.n

(* Participant index of the calling domain: 0 for the caller (and for any
   domain that never joined a pool), k for the k-th spawned worker of the
   pool it belongs to.  Stored in domain-local state — two participants
   never share a domain, so the value is stable for the whole life of the
   worker.  Consumers (the optimizer's prefix cache) use it to pick a
   participant-private shard without locking. *)
let participant_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let self () = Domain.DLS.get participant_key

let recommended () = Domain.recommended_domain_count ()

(* Process-wide default, settable from the command line (amgen --jobs). *)
let configured : int option Atomic.t = Atomic.make None

let default_domains () =
  match Atomic.get configured with Some n -> n | None -> recommended ()

let set_default_domains n = Atomic.set configured (Some (max 1 n))

(* Oversubscription clamp.  Domains beyond the host's recommended count
   add no compute — only stop-the-world GC synchronization and scheduling
   latency (measured 2-3x slowdowns of small searches on a 1-core host) —
   and determinism makes the participant count unobservable in results,
   so requested sizes are clamped by default.  The determinism test
   suites lift the clamp to exercise real multi-domain scheduling on any
   host. *)
let oversubscribe = Atomic.make false

let set_oversubscribe b = Atomic.set oversubscribe b

let effective_size n =
  let n = max 1 n in
  if Atomic.get oversubscribe then n else min n (recommended ())

(* Tiny optimizer tasks make the per-index claim traffic (one RMW per
   task) a measurable fraction of the work on a busy memory bus; claiming
   [grain] indices per RMW amortizes it.  The grain caps the stealable
   tail a claimant can hold hostage, so it stays small relative to the
   per-participant share. *)
let grain_of n total = max 1 (min 8 (total / (4 * n)))

(* Cumulative count of tasks executed out of another participant's
   chunk, process-wide.  Purely a load gauge for the serving metrics
   registry — steal totals are scheduling-dependent by nature and are
   deliberately not part of the deterministic [Obs] counter stream. *)
let steal_total = Atomic.make 0

let steals () = Atomic.get steal_total

(* Drain a chunk in grain-sized blocks, returning the number of tasks
   executed here.  The cheap read before each RMW means a drained chunk
   costs one load to skip — the claim counter does not creep past the
   bound under contention. *)
let drain_chunk job (next, stop) =
  let executed = ref 0 in
  let continue = ref true in
  while !continue do
    if Atomic.get next >= stop then continue := false
    else begin
      let i = Atomic.fetch_and_add next job.grain in
      if i >= stop then continue := false
      else begin
        let hi = min stop (i + job.grain) in
        for k = i to hi - 1 do
          job.run k
        done;
        executed := !executed + (hi - i);
        ignore (Atomic.fetch_and_add job.completed (hi - i))
      end
    end
  done;
  !executed

(* Drain the job: own chunk first, then steal from the others in
   round-robin order, backing off (a single atomic load) from any chunk
   already drained instead of spinning a fetch-and-add over it.  [me] is
   the participant index (0 = caller). *)
let exec_job t job me =
  ignore (drain_chunk job job.chunks.(me mod t.n));
  for k = 1 to Array.length job.chunks - 1 do
    let (next, stop) as chunk = job.chunks.((me + k) mod t.n) in
    if Atomic.get next < stop then begin
      let stolen = drain_chunk job chunk in
      if stolen > 0 then ignore (Atomic.fetch_and_add steal_total stolen)
    end
  done

(* Spin-then-park budgets.  The optimizer issues long trains of
   sub-millisecond jobs; a worker that parks on the condition variable
   between two of them pays a futex wakeup (tens of microseconds, more
   when the scheduler has migrated it) per job, which showed up as a
   1.15x overhead for 2 domains on small searches.  A short bounded spin
   on the atomic epoch catches the next job without a syscall in the
   back-to-back case, while a lone job still parks after ~a microsecond
   of pause hints.  The budgets are deliberately small so an
   oversubscribed host (more domains than cores) burns negligible time
   spinning against the domain that has the work. *)
let idle_spin = 512
let join_spin = 512

let rec worker_loop t me my_epoch =
  (* Racing ahead of the lock is safe: the epoch is only ever bumped
     (under the lock) when a fresh job has been published, so a stale
     read just means one more relax iteration. *)
  let rec spin k =
    if k > 0 && (not (Atomic.get t.stopping)) && Atomic.get t.epoch = my_epoch
    then begin
      Domain.cpu_relax ();
      spin (k - 1)
    end
  in
  spin idle_spin;
  Mutex.lock t.lock;
  while
    (not (Atomic.get t.stopping))
    && (t.job = None || Atomic.get t.epoch = my_epoch)
  do
    Condition.wait t.has_work t.lock
  done;
  if Atomic.get t.stopping then Mutex.unlock t.lock
  else begin
    let job = Option.get t.job in
    let epoch = Atomic.get t.epoch in
    Mutex.unlock t.lock;
    exec_job t job me;
    Mutex.lock t.lock;
    if Atomic.get job.completed = job.total then Condition.broadcast t.job_done;
    Mutex.unlock t.lock;
    worker_loop t me epoch
  end

let create ?domains () =
  let n =
    effective_size (match domains with Some d -> d | None -> default_domains ())
  in
  let t =
    {
      n;
      lock = Mutex.create ();
      has_work = Condition.create ();
      job_done = Condition.create ();
      job = None;
      epoch = Atomic.make 0;
      stopping = Atomic.make false;
      workers = [];
    }
  in
  t.workers <-
    List.init (n - 1) (fun k ->
        Domain.spawn (fun () ->
            Domain.DLS.set participant_key (k + 1);
            worker_loop t (k + 1) 0));
  t

let shutdown t =
  Mutex.lock t.lock;
  Atomic.set t.stopping true;
  Condition.broadcast t.has_work;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers;
  t.workers <- []

(* Pool checkout.  [with_pool] sits inside every optimizer search, often
   inside a caller's timed region; creating a pool there means a
   [Domain.spawn] per worker (milliseconds each, worse while other
   domains run GC barriers) and a join afterwards — measured as the
   dominant cost of small parallel searches.  Instead, idle pools are
   parked per size and handed back out: a checked-out pool is exclusively
   owned (re-entry stays impossible), a parked pool's workers sleep on
   the condition variable.  Workers keep their domain — and with it their
   {!self} participant index — across checkouts, so consumers keyed on
   the participant index (the prefix cache's shards) keep their state
   warm too.  Parked pools are shut down at exit so the process never
   waits on a sleeping domain. *)
let parked : (int, t list) Hashtbl.t = Hashtbl.create 4
let park_lock = Mutex.create ()

let () =
  at_exit (fun () ->
      Mutex.lock park_lock;
      let pools = Hashtbl.fold (fun _ ps acc -> ps @ acc) parked [] in
      Hashtbl.reset parked;
      Mutex.unlock park_lock;
      List.iter shutdown pools)

let acquire ?domains () =
  let n =
    effective_size (match domains with Some d -> d | None -> default_domains ())
  in
  Mutex.lock park_lock;
  let hit =
    match Hashtbl.find_opt parked n with
    | Some (p :: rest) ->
        Hashtbl.replace parked n rest;
        Some p
    | _ -> None
  in
  Mutex.unlock park_lock;
  match hit with Some p -> p | None -> create ~domains:n ()

let park t =
  Mutex.lock park_lock;
  let rest = Option.value ~default:[] (Hashtbl.find_opt parked t.n) in
  Hashtbl.replace parked t.n (t :: rest);
  Mutex.unlock park_lock

let with_pool ?domains f =
  let t = acquire ?domains () in
  Fun.protect ~finally:(fun () -> park t) (fun () -> f t)

(* Spawn-and-park, so a long-lived process (the serving daemon) can pay
   the Domain.spawn latency at startup instead of inside the first
   request's timed region. *)
let warm ?domains () =
  let t = acquire ?domains () in
  park t

let parked_count () =
  Mutex.lock park_lock;
  let n = Hashtbl.fold (fun _ ps acc -> acc + List.length ps) parked 0 in
  Mutex.unlock park_lock;
  n

(* Split [0, total) into [n] contiguous chunks, the first [total mod n]
   one element longer. *)
let chunks_of n total =
  let base = total / n and rem = total mod n in
  Array.init n (fun k ->
      let lo = (k * base) + min k rem in
      let len = base + if k < rem then 1 else 0 in
      (Atomic.make lo, lo + len))

let run_tasks t total run =
  if total > 0 then begin
    (* One probe strand per task slot; [fork] is a cheap token when the
       instrumentation is disabled.  Slot tids are assigned here, on the
       submitting strand, so they are deterministic — the same task gets
       the same tid whatever the domain count.  When nothing records, the
       raw task runs as-is: no strand routing, no span, no per-task
       closure pair — the claim loop calls [run] directly. *)
    let strands = Obs.fork total in
    let run =
      if Obs.recording strands then fun i ->
        Obs.enter strands i (fun () -> Obs.span "pool.task" (fun () -> run i))
      else run
    in
    Obs.count "pool.jobs" 1;
    Obs.count "pool.tasks" total;
    if t.n = 1 || total = 1 then
      (* No workers (or nothing to share): run in the caller, same code
         path as far as results are concerned. *)
      for i = 0 to total - 1 do run i done
    else begin
      let job =
        {
          chunks = chunks_of t.n total;
          run;
          grain = grain_of t.n total;
          total;
          completed = Atomic.make 0;
        }
      in
      Mutex.lock t.lock;
      if t.job <> None then begin
        Mutex.unlock t.lock;
        invalid_arg "Pool.map_array: pool is already running a job (re-entry)"
      end;
      t.job <- Some job;
      Atomic.incr t.epoch;
      Condition.broadcast t.has_work;
      Mutex.unlock t.lock;
      exec_job t job 0;
      (* The caller usually drains the lion's share of a small job; the
         stragglers a worker still holds finish within microseconds, so
         spin briefly before paying the condvar round-trip to park. *)
      let rec spin k =
        if k > 0 && Atomic.get job.completed < job.total then begin
          Domain.cpu_relax ();
          spin (k - 1)
        end
      in
      spin join_spin;
      Mutex.lock t.lock;
      while Atomic.get job.completed < job.total do
        Condition.wait t.job_done t.lock
      done;
      t.job <- None;
      Mutex.unlock t.lock
    end;
    (* Every task has completed; merge the slot strands in input order. *)
    Obs.join strands
  end

(* Shared skeleton of the map variants: option result slots, lowest-index
   error re-raised in the caller after all tasks have run.  The fault probe
   sits inside the error-recording wrapper so an injected [Inject.Fault]
   surfaces like any task failure instead of killing a worker domain.
   [cancel] is polled once per task claim: a pending task whose poll returns
   [true] is skipped and its slot stays [None]. *)
let map_array_opt t ?cancel f arr =
  let total = Array.length arr in
  if total = 0 then [||]
  else begin
    let results = Array.make total None in
    let error_lock = Mutex.create () in
    let first_error = ref None in
    let skip =
      match cancel with None -> fun () -> false | Some c -> c
    in
    let run i =
      if not (skip ()) then
        match
          Inject.probe Inject.Pool_task;
          f arr.(i)
        with
        | v -> results.(i) <- Some v
        | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            Mutex.lock error_lock;
            (match !first_error with
            | Some (j, _, _) when j <= i -> ()
            | _ -> first_error := Some (i, e, bt));
            Mutex.unlock error_lock
    in
    run_tasks t total run;
    (match !first_error with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    results
  end

let map_array t f arr =
  map_array_opt t f arr
  |> Array.map
       (function Some v -> v | None -> assert false (* every task ran *))

let map_array_cancel t ~cancel f arr = map_array_opt t ~cancel f arr

let map_list t f l = Array.to_list (map_array t f (Array.of_list l))
