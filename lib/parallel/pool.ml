(* Work-stealing domain pool.

   A job is an index range [0, total) split into one contiguous chunk per
   participant.  Each participant drains its own chunk with an atomic
   fetch-and-add, then steals from the other chunks in round-robin order;
   overshooting a chunk's bound is harmless, the claimed index is simply
   out of range and the scan moves on.  Tasks write their results into
   per-index slots, so the caller sees them in input order and every
   reduction over them is scheduling-independent.

   Workers idle on a condition variable between jobs; an epoch counter
   tells a worker returning from a job not to re-enter it.

   Observability: when [Obs] is recording, every job forks one probe
   strand per task slot, wraps each task in a [pool.task] span routed to
   its slot strand, and merges the strands back in slot order after the
   job — so the recorded event stream is identical for every domain
   count (only timestamps vary), matching the optimizer's determinism
   contract. *)

module Obs = Amg_obs.Obs
module Inject = Amg_robust.Inject

type job = {
  chunks : (int Atomic.t * int) array; (* per-participant (next, stop) *)
  run : int -> unit;                   (* never raises; records errors *)
  total : int;
  completed : int Atomic.t;
}

type t = {
  n : int;
  lock : Mutex.t;
  has_work : Condition.t;
  job_done : Condition.t;
  mutable job : job option;
  mutable epoch : int;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

let size t = t.n

(* Participant index of the calling domain: 0 for the caller (and for any
   domain that never joined a pool), k for the k-th spawned worker of the
   pool it belongs to.  Stored in domain-local state — two participants
   never share a domain, so the value is stable for the whole life of the
   worker.  Consumers (the optimizer's prefix cache) use it to pick a
   participant-private shard without locking. *)
let participant_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let self () = Domain.DLS.get participant_key

let recommended () = Domain.recommended_domain_count ()

(* Process-wide default, settable from the command line (amgen --jobs). *)
let configured : int option Atomic.t = Atomic.make None

let default_domains () =
  match Atomic.get configured with Some n -> n | None -> recommended ()

let set_default_domains n = Atomic.set configured (Some (max 1 n))

(* Drain the job: own chunk first, then steal. [me] is the participant
   index (0 = caller). *)
let exec_job t job me =
  for k = 0 to Array.length job.chunks - 1 do
    let next, stop = job.chunks.((me + k) mod t.n) in
    let continue = ref true in
    while !continue do
      let i = Atomic.fetch_and_add next 1 in
      if i >= stop then continue := false
      else begin
        job.run i;
        ignore (Atomic.fetch_and_add job.completed 1)
      end
    done
  done

let rec worker_loop t me my_epoch =
  Mutex.lock t.lock;
  while (not t.stopping) && (t.job = None || t.epoch = my_epoch) do
    Condition.wait t.has_work t.lock
  done;
  if t.stopping then Mutex.unlock t.lock
  else begin
    let job = Option.get t.job in
    let epoch = t.epoch in
    Mutex.unlock t.lock;
    exec_job t job me;
    Mutex.lock t.lock;
    if Atomic.get job.completed = job.total then Condition.broadcast t.job_done;
    Mutex.unlock t.lock;
    worker_loop t me epoch
  end

let create ?domains () =
  let n =
    max 1 (match domains with Some d -> d | None -> default_domains ())
  in
  let t =
    {
      n;
      lock = Mutex.create ();
      has_work = Condition.create ();
      job_done = Condition.create ();
      job = None;
      epoch = 0;
      stopping = false;
      workers = [];
    }
  in
  t.workers <-
    List.init (n - 1) (fun k ->
        Domain.spawn (fun () ->
            Domain.DLS.set participant_key (k + 1);
            worker_loop t (k + 1) 0));
  t

let shutdown t =
  Mutex.lock t.lock;
  t.stopping <- true;
  Condition.broadcast t.has_work;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Split [0, total) into [n] contiguous chunks, the first [total mod n]
   one element longer. *)
let chunks_of n total =
  let base = total / n and rem = total mod n in
  Array.init n (fun k ->
      let lo = (k * base) + min k rem in
      let len = base + if k < rem then 1 else 0 in
      (Atomic.make lo, lo + len))

let run_tasks t total run =
  if total > 0 then begin
    (* One probe strand per task slot; [fork] is a cheap token when the
       instrumentation is disabled.  Slot tids are assigned here, on the
       submitting strand, so they are deterministic — the same task gets
       the same tid whatever the domain count. *)
    let strands = Obs.fork total in
    let run i =
      Obs.enter strands i (fun () -> Obs.span "pool.task" (fun () -> run i))
    in
    Obs.count "pool.jobs" 1;
    Obs.count "pool.tasks" total;
    if t.n = 1 || total = 1 then
      (* No workers (or nothing to share): run in the caller, same code
         path as far as results are concerned. *)
      for i = 0 to total - 1 do run i done
    else begin
      let job =
        { chunks = chunks_of t.n total; run; total; completed = Atomic.make 0 }
      in
      Mutex.lock t.lock;
      if t.job <> None then begin
        Mutex.unlock t.lock;
        invalid_arg "Pool.map_array: pool is already running a job (re-entry)"
      end;
      t.job <- Some job;
      t.epoch <- t.epoch + 1;
      Condition.broadcast t.has_work;
      Mutex.unlock t.lock;
      exec_job t job 0;
      Mutex.lock t.lock;
      while Atomic.get job.completed < job.total do
        Condition.wait t.job_done t.lock
      done;
      t.job <- None;
      Mutex.unlock t.lock
    end;
    (* Every task has completed; merge the slot strands in input order. *)
    Obs.join strands
  end

(* Shared skeleton of the map variants: option result slots, lowest-index
   error re-raised in the caller after all tasks have run.  The fault probe
   sits inside the error-recording wrapper so an injected [Inject.Fault]
   surfaces like any task failure instead of killing a worker domain.
   [cancel] is polled once per task claim: a pending task whose poll returns
   [true] is skipped and its slot stays [None]. *)
let map_array_opt t ?cancel f arr =
  let total = Array.length arr in
  if total = 0 then [||]
  else begin
    let results = Array.make total None in
    let error_lock = Mutex.create () in
    let first_error = ref None in
    let skip =
      match cancel with None -> fun () -> false | Some c -> c
    in
    let run i =
      if not (skip ()) then
        match
          Inject.probe Inject.Pool_task;
          f arr.(i)
        with
        | v -> results.(i) <- Some v
        | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            Mutex.lock error_lock;
            (match !first_error with
            | Some (j, _, _) when j <= i -> ()
            | _ -> first_error := Some (i, e, bt));
            Mutex.unlock error_lock
    in
    run_tasks t total run;
    (match !first_error with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    results
  end

let map_array t f arr =
  map_array_opt t f arr
  |> Array.map
       (function Some v -> v | None -> assert false (* every task ran *))

let map_array_cancel t ~cancel f arr = map_array_opt t ~cancel f arr

let map_list t f l = Array.to_list (map_array t f (Array.of_list l))
