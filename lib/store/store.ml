(* Append-only CRC'd record log with atomic-rename checkpoints.

   Concurrency: one mutex per handle guards the table, the log fd and
   every derived counter; the serve daemon checkpoints from its wait
   loop while worker threads append, so all file mutation happens under
   the lock.  Lookups also take the lock — they are a hashtable probe,
   nothing more, and the optimizer consults the store once per search.

   Crash argument, in short: appends go through O_APPEND so a record is
   laid down at the end of the file in order; a crash mid-append leaves
   a frame that extends past EOF (torn tail), which recovery truncates.
   Checkpoints build the replacement file aside and publish it with
   rename(2), which POSIX makes atomic within a filesystem: a crash
   before the rename leaves the old log plus a stale temp file (ignored
   and overwritten later); a crash after leaves the new compact log.
   There is no window in which a reader can see a half-written store. *)

module Diag = Amg_robust.Diag
module Policy = Amg_robust.Policy
module Inject = Amg_robust.Inject
module Metrics = Amg_obs.Metrics
module Obs = Amg_obs.Obs

type entry = {
  rating : float;
  perm : int array;
  meta : (string * string) list;
}

type stats = {
  entries : int;
  log_records : int;
  log_bytes : int;
  hits : int;
  misses : int;
  writes : int;
  write_failures : int;
  recovered_records : int;
  torn_tail_truncations : int;
  corrupt_records : int;
  checkpoints : int;
}

type t = {
  path : string;
  fsync_every : int;
  readonly : bool;
  lock : Mutex.t;
  tbl : (string, entry) Hashtbl.t;
  mutable log_fd : Unix.file_descr option;
  mutable log_records : int;
  mutable log_bytes : int;
  mutable unsynced : int;
  mutable hits : int;
  mutable misses : int;
  mutable writes : int;
  mutable write_failures : int;
  mutable recovered_records : int;
  mutable torn_tail_truncations : int;
  mutable corrupt_records : int;
  mutable checkpoints : int;
  mutable closed : bool;
}

let magic = "AMGSTORE"
let version = 1
let header_len = String.length magic + 4
let max_payload = 1 lsl 24

(* --- CRC32 (IEEE 802.3, reflected, poly 0xEDB88320) ------------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 <> 0 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s pos len =
  let table = Lazy.force crc_table in
  let crc = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    crc := table.((!crc lxor Char.code (Bytes.unsafe_get s i)) land 0xFF) lxor (!crc lsr 8)
  done;
  !crc lxor 0xFFFFFFFF

(* --- record encoding --------------------------------------------------- *)

let add_u32 b n = Buffer.add_int32_le b (Int32.of_int n)

let add_lstring b s =
  add_u32 b (String.length s);
  Buffer.add_string b s

let encode_payload key e =
  let b = Buffer.create 128 in
  add_lstring b key;
  Buffer.add_int64_le b (Int64.bits_of_float e.rating);
  add_u32 b (Array.length e.perm);
  Array.iter (fun i -> add_u32 b i) e.perm;
  add_u32 b (List.length e.meta);
  List.iter
    (fun (k, v) ->
      add_lstring b k;
      add_lstring b v)
    e.meta;
  Buffer.to_bytes b

let encode_record key e =
  let payload = encode_payload key e in
  let n = Bytes.length payload in
  let rcd = Bytes.create (8 + n) in
  Bytes.set_int32_le rcd 0 (Int32.of_int n);
  Bytes.set_int32_le rcd 4 (Int32.of_int (crc32 payload 0 n));
  Bytes.blit payload 0 rcd 8 n;
  rcd

let get_u32 data pos = Int32.to_int (Bytes.get_int32_le data pos) land 0xFFFFFFFF

exception Malformed

let decode_payload data pos len =
  let limit = pos + len in
  let cur = ref pos in
  let need n = if !cur + n > limit then raise Malformed in
  let u32 () =
    need 4;
    let v = get_u32 data !cur in
    cur := !cur + 4;
    v
  in
  let lstring () =
    let n = u32 () in
    need n;
    let s = Bytes.sub_string data !cur n in
    cur := !cur + n;
    s
  in
  let key = lstring () in
  need 8;
  let rating = Int64.float_of_bits (Bytes.get_int64_le data !cur) in
  cur := !cur + 8;
  let plen = u32 () in
  if plen > len then raise Malformed;
  let perm = Array.init plen (fun _ -> u32 ()) in
  let mlen = u32 () in
  if mlen > len then raise Malformed;
  let meta =
    List.init mlen (fun _ ->
        let k = lstring () in
        let v = lstring () in
        (k, v))
  in
  if !cur <> limit then raise Malformed;
  (key, { rating; perm; meta })

(* --- metrics ------------------------------------------------------------ *)

let m_hits = lazy (Metrics.counter "store.hits")
let m_misses = lazy (Metrics.counter "store.misses")
let m_writes = lazy (Metrics.counter "store.writes")
let m_write_failures = lazy (Metrics.counter "store.write_failures")
let m_recoveries = lazy (Metrics.counter "store.recoveries")
let m_recovered = lazy (Metrics.counter "store.recovered_records")
let m_torn = lazy (Metrics.counter "store.torn_tail_truncations")
let m_corrupt = lazy (Metrics.counter "store.corrupt_records")
let m_checkpoints = lazy (Metrics.counter "store.checkpoints")
let bump m = Metrics.incr (Lazy.force m)

(* --- contained I/O failures -------------------------------------------- *)

let diag_of_io_exn ~code ~path = function
  | Inject.Fault (site, hit) ->
      Diag.v ~severity:Diag.Warning Diag.Store ~code
        ~payload:
          [
            ("path", path);
            ("site", Inject.site_to_string site);
            ("hit", string_of_int hit);
          ]
        ~hint:"the in-memory table is still authoritative; durability degraded"
        (Printf.sprintf "injected store fault at %s (hit %d)"
           (Inject.site_to_string site) hit)
  | Unix.Unix_error (err, fn, _) ->
      Diag.v ~severity:Diag.Warning Diag.Store ~code
        ~payload:[ ("path", path); ("errno", Unix.error_message err); ("fn", fn) ]
        ~hint:"the in-memory table is still authoritative; durability degraded"
        (Printf.sprintf "store I/O failed in %s: %s" fn (Unix.error_message err))
  | Sys_error msg ->
      Diag.v ~severity:Diag.Warning Diag.Store ~code
        ~payload:[ ("path", path) ]
        ~hint:"the in-memory table is still authoritative; durability degraded"
        ("store I/O failed: " ^ msg)
  | exn -> raise exn

let io_exn = function
  | Inject.Fault _ | Unix.Unix_error _ | Sys_error _ -> true
  | _ -> false

(* --- low-level I/O ------------------------------------------------------ *)

let rec write_all fd b pos len =
  if len > 0 then begin
    let n =
      try Unix.write fd b pos len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd b (pos + n) (len - n)
  end

(* One probe per read(2): an armed store-read schedule models a log that
   cannot be read past a point (media error), yielding partial recovery. *)
let read_all fd path =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let rec go () =
    match
      Inject.probe Inject.Store_read;
      Unix.read fd chunk 0 (Bytes.length chunk)
    with
    | 0 -> None
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception e when io_exn e -> Some (diag_of_io_exn ~code:"store.read_failed" ~path e)
  in
  let failure = go () in
  (Buffer.to_bytes buf, failure)

let fsync_dir path =
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

(* --- recovery scan ------------------------------------------------------ *)

type scan = {
  mutable s_records : int;  (** well-formed records replayed *)
  mutable s_corrupt : int;
  mutable s_torn : int;
  mutable s_good_end : int;  (** usable prefix; truncate here if torn *)
  mutable s_diags : Diag.t list;  (** reversed *)
}

(* Replays [data.(header_len .. len)] calling [apply key entry] per good
   record.  A frame extending past [len] is a torn tail (expected crash
   shape, silent); a CRC or decode failure is a corrupt interior record
   (diagnosed, skipped); an implausible length means framing is lost and
   the rest of the log is undecodable (diagnosed, dropped). *)
let scan_log ~path data len apply =
  let sc =
    { s_records = 0; s_corrupt = 0; s_torn = 0; s_good_end = header_len; s_diags = [] }
  in
  let diag ?(severity = Diag.Warning) code msg payload =
    sc.s_diags <- Diag.v ~severity Diag.Store ~code ~payload:(("path", path) :: payload) msg :: sc.s_diags
  in
  let pos = ref header_len in
  let stop = ref false in
  while (not !stop) && !pos < len do
    if len - !pos < 8 then begin
      (* partial frame header: torn tail *)
      sc.s_torn <- sc.s_torn + 1;
      sc.s_good_end <- !pos;
      stop := true
    end
    else begin
      let plen = get_u32 data !pos in
      let crc = get_u32 data (!pos + 4) in
      if plen > max_payload then begin
        (* framing lost: nothing after this offset can be trusted *)
        sc.s_corrupt <- sc.s_corrupt + 1;
        diag "store.corrupt_record"
          (Printf.sprintf "implausible record length %d at offset %d; dropping the rest of the log" plen !pos)
          [ ("offset", string_of_int !pos); ("len", string_of_int plen) ];
        sc.s_good_end <- !pos;
        stop := true
      end
      else if !pos + 8 + plen > len then begin
        (* frame extends past EOF: torn tail *)
        sc.s_torn <- sc.s_torn + 1;
        sc.s_good_end <- !pos;
        stop := true
      end
      else begin
        let ok = crc32 data (!pos + 8) plen = crc in
        (if not ok then begin
           sc.s_corrupt <- sc.s_corrupt + 1;
           diag "store.corrupt_record"
             (Printf.sprintf "CRC mismatch at offset %d; record dropped" !pos)
             [ ("offset", string_of_int !pos) ]
         end
         else
           match decode_payload data (!pos + 8) plen with
           | key, e ->
               apply key e;
               sc.s_records <- sc.s_records + 1
           | exception Malformed ->
               sc.s_corrupt <- sc.s_corrupt + 1;
               diag "store.corrupt_record"
                 (Printf.sprintf "undecodable payload at offset %d; record dropped" !pos)
                 [ ("offset", string_of_int !pos) ]);
        pos := !pos + 8 + plen;
        sc.s_good_end <- !pos
      end
    end
  done;
  sc

let check_header ~path data len =
  if len = 0 then `Empty
  else if len < header_len then `Torn_header
  else if Bytes.sub_string data 0 (String.length magic) <> magic then
    Diag.fail Diag.Store ~code:"store.bad_header"
      ~payload:[ ("path", path) ]
      ~hint:"this file is not an AMGSTORE result log; refusing to guess"
      (Printf.sprintf "bad magic in %s" path)
  else
    let v = get_u32 data (String.length magic) in
    if v <> version then
      Diag.fail Diag.Store ~code:"store.bad_header"
        ~payload:[ ("path", path); ("version", string_of_int v) ]
        (Printf.sprintf "unsupported store version %d in %s" v path)
    else `Ok

(* --- open --------------------------------------------------------------- *)

let header_bytes () =
  let b = Buffer.create header_len in
  Buffer.add_string b magic;
  add_u32 b version;
  Buffer.to_bytes b

let open_ ?(fsync_every = 8) ?(readonly = false) path =
  let flags =
    if readonly then [ Unix.O_RDONLY ] else [ Unix.O_RDWR; Unix.O_CREAT ]
  in
  let fd =
    try Unix.openfile path flags 0o644
    with Unix.Unix_error (err, fn, _) ->
      Diag.fail Diag.Store ~code:"store.open_failed"
        ~payload:[ ("path", path); ("errno", Unix.error_message err); ("fn", fn) ]
        (Printf.sprintf "cannot open store %s: %s" path (Unix.error_message err))
  in
  let t =
    {
      path;
      fsync_every = max 1 fsync_every;
      readonly;
      lock = Mutex.create ();
      tbl = Hashtbl.create 64;
      log_fd = None;
      log_records = 0;
      log_bytes = header_len;
      unsynced = 0;
      hits = 0;
      misses = 0;
      writes = 0;
      write_failures = 0;
      recovered_records = 0;
      torn_tail_truncations = 0;
      corrupt_records = 0;
      checkpoints = 0;
      closed = false;
    }
  in
  let finish_open () =
    let data, read_failure = read_all fd path in
    let len = Bytes.length data in
    let diags = ref (match read_failure with Some d -> [ d ] | None -> []) in
    let fresh = ref false in
    (match check_header ~path data len with
    | `Ok ->
        let sc = scan_log ~path data len (fun k e -> Hashtbl.replace t.tbl k e) in
        t.log_records <- sc.s_records;
        t.recovered_records <- sc.s_records;
        t.torn_tail_truncations <- sc.s_torn;
        t.corrupt_records <- sc.s_corrupt;
        t.log_bytes <- sc.s_good_end;
        diags := List.rev_append sc.s_diags !diags;
        if sc.s_records > 0 then begin
          bump m_recoveries;
          Metrics.add (Lazy.force m_recovered) sc.s_records;
          diags :=
            Diag.v ~severity:Diag.Info Diag.Store ~code:"store.recovered"
              ~payload:
                [
                  ("path", path);
                  ("records", string_of_int sc.s_records);
                  ("entries", string_of_int (Hashtbl.length t.tbl));
                ]
              (Printf.sprintf "replayed %d record(s), %d live entr%s" sc.s_records
                 (Hashtbl.length t.tbl)
                 (if Hashtbl.length t.tbl = 1 then "y" else "ies"))
            :: !diags
        end;
        (* silently repair a torn tail (and drop undecodable framing) so
           the next O_APPEND lands on a clean record boundary *)
        if (not readonly) && read_failure = None && sc.s_good_end < len then
          Unix.ftruncate fd sc.s_good_end
    | `Empty ->
        fresh := true;
        if not readonly then begin
          write_all fd (header_bytes ()) 0 header_len;
          (try Unix.fsync fd with Unix.Unix_error _ -> ())
        end
    | `Torn_header ->
        (* shorter than a header: only a crash during creation does this *)
        t.torn_tail_truncations <- 1;
        if not readonly then begin
          Unix.ftruncate fd 0;
          (* the fd offset is past the torn bytes just read; rewind or the
             fresh header lands after a hole of zeros *)
          ignore (Unix.lseek fd 0 Unix.SEEK_SET);
          write_all fd (header_bytes ()) 0 header_len;
          (try Unix.fsync fd with Unix.Unix_error _ -> ())
        end);
    ignore !fresh;
    if t.torn_tail_truncations > 0 then
      Metrics.add (Lazy.force m_torn) t.torn_tail_truncations;
    if t.corrupt_records > 0 then
      Metrics.add (Lazy.force m_corrupt) t.corrupt_records;
    Unix.close fd;
    if not readonly then
      t.log_fd <- Some (Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644);
    (t, List.rev !diags)
  in
  match finish_open () with
  | r -> r
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e

(* --- accessors ---------------------------------------------------------- *)

let path t = t.path

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let length t = with_lock t (fun () -> Hashtbl.length t.tbl)

let find t key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some e ->
          t.hits <- t.hits + 1;
          bump m_hits;
          Obs.count "store.hits" 1;
          Some e
      | None ->
          t.misses <- t.misses + 1;
          bump m_misses;
          Obs.count "store.misses" 1;
          None)

let mem t key = find t key <> None

let iter f t =
  with_lock t (fun () -> Hashtbl.iter f t.tbl)

(* --- append path -------------------------------------------------------- *)

let report_failure t ~code exn =
  t.write_failures <- t.write_failures + 1;
  bump m_write_failures;
  Policy.report (diag_of_io_exn ~code ~path:t.path exn)

(* Caller holds the lock.  The probe sits *between* two half-writes when
   the harness is armed, so a scheduled store-write fault leaves half a
   record on disk — a genuine torn tail for recovery to chew on.  The
   tail is repaired immediately (ftruncate back to the pre-append size)
   so later appends still replay; the injected crash shape reaches disk
   only when the process actually dies before the repair. *)
let append_locked t rcd =
  match t.log_fd with
  | None -> ()
  | Some fd -> (
      let len = Bytes.length rcd in
      let appended () =
        t.log_records <- t.log_records + 1;
        t.log_bytes <- t.log_bytes + len;
        t.writes <- t.writes + 1;
        bump m_writes;
        t.unsynced <- t.unsynced + 1;
        if t.unsynced >= t.fsync_every then begin
          t.unsynced <- 0;
          try
            Inject.probe Inject.Store_fsync;
            Unix.fsync fd
          with e when io_exn e -> report_failure t ~code:"store.fsync_failed" e
        end
      in
      try
        if Inject.armed () then begin
          let h = len / 2 in
          write_all fd rcd 0 h;
          Inject.probe Inject.Store_write;
          write_all fd rcd h (len - h)
        end
        else begin
          Inject.probe Inject.Store_write;
          write_all fd rcd 0 len
        end;
        appended ()
      with e when io_exn e ->
        report_failure t ~code:"store.write_failed" e;
        (* repair: drop whatever partial frame made it to disk *)
        (try Unix.ftruncate fd t.log_bytes
         with Unix.Unix_error _ | Sys_error _ ->
           (* cannot even repair; stop appending to avoid a poisoned log *)
           (try Unix.close fd with Unix.Unix_error _ -> ());
           t.log_fd <- None))

let record t key e =
  with_lock t (fun () ->
      Hashtbl.replace t.tbl key e;
      append_locked t (encode_record key e))

let record_if t key ~keep e =
  with_lock t (fun () ->
      let write =
        match Hashtbl.find_opt t.tbl key with
        | None -> true
        | Some old -> not (keep old)
      in
      if write then begin
        Hashtbl.replace t.tbl key e;
        append_locked t (encode_record key e)
      end;
      write)

let record_better t key e =
  record_if t key ~keep:(fun old -> old.rating <= e.rating) e

let sync t =
  with_lock t (fun () ->
      match t.log_fd with
      | Some fd when t.unsynced > 0 -> (
          t.unsynced <- 0;
          try
            Inject.probe Inject.Store_fsync;
            Unix.fsync fd
          with e when io_exn e -> report_failure t ~code:"store.fsync_failed" e)
      | _ -> ())

(* --- checkpoint --------------------------------------------------------- *)

let checkpoint t =
  with_lock t (fun () ->
      if t.readonly || t.closed then ()
      else begin
        let tmp = t.path ^ ".tmp" in
        let cleanup () = try Sys.remove tmp with Sys_error _ -> () in
        match
          let entries =
            Hashtbl.fold (fun k e acc -> (k, e) :: acc) t.tbl []
            |> List.sort (fun (a, _) (b, _) -> String.compare a b)
          in
          let fd =
            Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
          in
          let bytes = ref header_len in
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              write_all fd (header_bytes ()) 0 header_len;
              List.iter
                (fun (k, e) ->
                  let rcd = encode_record k e in
                  Inject.probe Inject.Store_write;
                  write_all fd rcd 0 (Bytes.length rcd);
                  bytes := !bytes + Bytes.length rcd)
                entries;
              Inject.probe Inject.Store_fsync;
              Unix.fsync fd);
          Inject.probe Inject.Store_rename;
          Unix.rename tmp t.path;
          fsync_dir t.path;
          (List.length entries, !bytes)
        with
        | n_records, n_bytes ->
            (* the old log fd now points at the unlinked inode; swing the
               append handle over to the published snapshot *)
            (match t.log_fd with
            | Some fd -> (
                (try Unix.close fd with Unix.Unix_error _ -> ());
                t.log_fd <- None;
                match Unix.openfile t.path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 with
                | fd -> t.log_fd <- Some fd
                | exception e when io_exn e ->
                    report_failure t ~code:"store.checkpoint_failed" e)
            | None -> ());
            t.log_records <- n_records;
            t.log_bytes <- n_bytes;
            t.unsynced <- 0;
            t.checkpoints <- t.checkpoints + 1;
            bump m_checkpoints
        | exception e when io_exn e ->
            cleanup ();
            report_failure t ~code:"store.checkpoint_failed" e
      end)

let close t =
  with_lock t (fun () ->
      if not t.closed then begin
        t.closed <- true;
        match t.log_fd with
        | Some fd ->
            t.log_fd <- None;
            (if t.unsynced > 0 then
               try
                 Inject.probe Inject.Store_fsync;
                 Unix.fsync fd
               with e when io_exn e -> report_failure t ~code:"store.fsync_failed" e);
            (try Unix.close fd with Unix.Unix_error _ -> ())
        | None -> ()
      end)

let stats t =
  with_lock t (fun () ->
      {
        entries = Hashtbl.length t.tbl;
        log_records = t.log_records;
        log_bytes = t.log_bytes;
        hits = t.hits;
        misses = t.misses;
        writes = t.writes;
        write_failures = t.write_failures;
        recovered_records = t.recovered_records;
        torn_tail_truncations = t.torn_tail_truncations;
        corrupt_records = t.corrupt_records;
        checkpoints = t.checkpoints;
      })

(* --- verify ------------------------------------------------------------- *)

let verify path =
  let fd =
    try Unix.openfile path [ Unix.O_RDONLY ] 0
    with Unix.Unix_error (err, fn, _) ->
      Diag.fail Diag.Store ~code:"store.open_failed"
        ~payload:[ ("path", path); ("errno", Unix.error_message err); ("fn", fn) ]
        (Printf.sprintf "cannot open store %s: %s" path (Unix.error_message err))
  in
  let data, read_failure =
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> read_all fd path)
  in
  let len = Bytes.length data in
  let tbl = Hashtbl.create 64 in
  let diags = ref (match read_failure with Some d -> [ d ] | None -> []) in
  let records = ref 0 and torn = ref 0 and corrupt = ref 0 and good_end = ref len in
  (match check_header ~path data len with
  | `Ok ->
      let sc = scan_log ~path data len (fun k e -> Hashtbl.replace tbl k e) in
      records := sc.s_records;
      torn := sc.s_torn;
      corrupt := sc.s_corrupt;
      good_end := sc.s_good_end;
      diags := List.rev_append sc.s_diags !diags;
      if sc.s_torn > 0 then
        diags :=
          Diag.v ~severity:Diag.Info Diag.Store ~code:"store.torn_tail"
            ~payload:
              [
                ("path", path);
                ("offset", string_of_int sc.s_good_end);
                ("bytes", string_of_int (len - sc.s_good_end));
              ]
            (Printf.sprintf "torn tail: %d trailing byte(s) would be truncated on open"
               (len - sc.s_good_end))
          :: !diags
  | `Empty -> ()
  | `Torn_header ->
      torn := 1;
      good_end := 0;
      diags :=
        Diag.v ~severity:Diag.Info Diag.Store ~code:"store.torn_tail"
          ~payload:[ ("path", path) ]
          "file shorter than a store header; would be reinitialized on open"
        :: !diags);
  ( {
      entries = Hashtbl.length tbl;
      log_records = !records;
      log_bytes = len;
      hits = 0;
      misses = 0;
      writes = 0;
      write_failures = 0;
      recovered_records = !records;
      torn_tail_truncations = !torn;
      corrupt_records = !corrupt;
      checkpoints = 0;
    },
    List.rev !diags )

(* --- canonical key ------------------------------------------------------ *)

type param = Num of float | Str of string

let signature ~tech ~entity ~params =
  let b = Buffer.create 96 in
  let token s =
    Buffer.add_string b (string_of_int (String.length s));
    Buffer.add_char b ':';
    Buffer.add_string b s
  in
  token tech;
  token entity;
  List.sort (fun (a, _) (c, _) -> String.compare a c) params
  |> List.iter (fun (k, p) ->
         token k;
         token
           (match p with
           | Num f -> Printf.sprintf "n%h" f
           | Str s -> "s" ^ s));
  Buffer.contents b

let tech_fingerprint text = Digest.to_hex (Digest.string text)

(* --- registry gauges ---------------------------------------------------- *)

let register_metrics t =
  Metrics.gauge_fn "store.records" (fun () -> float_of_int (length t));
  Metrics.gauge_fn "store.bytes" (fun () ->
      float_of_int (with_lock t (fun () -> t.log_bytes)))
