(** Durable, crash-safe result store.

    Maps an opaque key — see {!signature} for the canonical
    (tech-fingerprint, entity, params) key used by the CLI and the serve
    daemon — to the best known compaction order for that module: a
    permutation of the canonical step list, its rating, and free-form
    metadata.  The file is an append-only record log behind a versioned
    header; {!checkpoint} rewrites it as one record per live key via
    write-to-temp + fsync + atomic rename, so a reader never observes a
    half-written snapshot.

    On-disk format (all integers little-endian):

    {v
    header  := "AMGSTORE" u32(version=1)
    record  := u32(payload_len) u32(crc32 payload) payload
    payload := u32(key_len) key
               u64(float bits of rating)
               u32(perm_len) perm_len * u32
               u32(meta_len) meta_len * (u32 len bytes) * 2
    v}

    Recovery replays the log in order (last record for a key wins),
    {e silently truncates a torn tail} (a record whose frame extends past
    end-of-file — the signature of a crash mid-append), and surfaces
    corrupted interior records (CRC mismatch) as structured diagnostics
    with stable [store.*] codes, never as wrong layouts.

    Fault containment: every I/O failure on the write path (injected via
    {!Amg_robust.Inject} probes at [store-read]/[store-write]/
    [store-fsync]/[store-rename], or real [ENOSPC]-style errors) is
    caught inside the store, reported as a Warning diagnostic through
    {!Amg_robust.Policy.report}, and leaves the in-memory table — the
    authority for lookups — untouched.  Callers therefore keep serving
    correct results; only durability degrades. *)

type entry = {
  rating : float;  (** rating of the layout produced by the stored order *)
  perm : int array;
      (** best order as a permutation of indices into the canonical step
          list (step uids are process-local and cannot be persisted) *)
  meta : (string * string) list;  (** free-form, e.g. optimizer mode *)
}

type stats = {
  entries : int;  (** live keys in memory *)
  log_records : int;  (** records currently in the on-disk log *)
  log_bytes : int;  (** on-disk size, header included *)
  hits : int;  (** {!find} calls that returned an entry *)
  misses : int;  (** {!find} calls that returned [None] *)
  writes : int;  (** records appended by this handle *)
  write_failures : int;  (** contained append/fsync/checkpoint failures *)
  recovered_records : int;  (** log records replayed at {!open_} *)
  torn_tail_truncations : int;  (** torn tails silently truncated at open *)
  corrupt_records : int;  (** interior records dropped for CRC mismatch *)
  checkpoints : int;  (** successful {!checkpoint}s by this handle *)
}

type t

val open_ : ?fsync_every:int -> ?readonly:bool -> string -> t * Amg_robust.Diag.t list
(** Open (creating if absent) the store at a path and replay its log.
    The returned diagnostics describe what recovery found: Warning
    [store.corrupt_record] per dropped interior record, Warning
    [store.read_failed] if the log could not be read to the end (partial
    recovery), Info [store.recovered] when a non-empty log was replayed.
    A torn tail is truncated silently — it is the expected shape of a
    crash — and only counted in {!stats}.  Raises [Amg_robust.Diag.Fail] with code
    [store.bad_header] if the file exists but is not an AMGSTORE-v1 log
    (never guesses at foreign bytes).

    [fsync_every] (default 8) bounds the number of appended records
    between durability barriers; [readonly] opens without write access
    (recovery then never truncates, and {!record} is a contained no-op
    failure). *)

val path : t -> string
val length : t -> int
val find : t -> string -> entry option
val mem : t -> string -> bool

val iter : (string -> entry -> unit) -> t -> unit
(** Iteration order is unspecified. *)

val record : t -> string -> entry -> unit
(** Unconditionally bind [key], in memory and in the log. *)

val record_if : t -> string -> keep:(entry -> bool) -> entry -> bool
(** [record_if t key ~keep e] atomically tests and binds: if [key] is
    absent, or [keep old] is false for the current entry, bind [e] (in
    memory and in the log) and return [true]; otherwise leave the
    incumbent untouched and return [false].  The test and the write
    happen under the handle lock, so two racing writers cannot clobber
    each other's strictly-better record. *)

val record_better : t -> string -> entry -> bool
(** Bind [key] only if it is absent or the new rating is strictly lower
    (ratings are minimized); returns whether the entry was recorded.
    Equivalent to [record_if ~keep:(fun old -> old.rating <= e.rating)]. *)

val sync : t -> unit
(** Force a durability barrier if there are unsynced appends. *)

val checkpoint : t -> unit
(** Compact the log to one record per live key: write a temp file next to
    the store, fsync it, atomically rename it over the log, fsync the
    directory.  A failure at any point (including an injected
    crash-before-rename) leaves the existing log intact and is reported
    as a Warning [store.checkpoint_failed]. *)

val close : t -> unit
(** Final sync (best-effort) and release the file descriptor.  The handle
    must not be used afterwards. *)

val stats : t -> stats

val verify : string -> stats * Amg_robust.Diag.t list
(** Scan a store file without opening it for writing and without
    mutating it: returns the stats recovery would produce plus its
    diagnostics (a torn tail is reported here as an Info, since verify
    repairs nothing).  Raises [Amg_robust.Diag.Fail] on a missing/unreadable file or
    a bad header. *)

type param = Num of float | Str of string

val signature : tech:string -> entity:string -> params:(string * param) list -> string
(** Canonical store key: length-prefixed tokens over the technology
    fingerprint, the entity name and the sorted parameter bindings, with
    floats rendered as hex images so equal keys mean bit-equal inputs.
    The optimizer mode is appended by [Optimize] itself, so one key
    namespace serves all three search strategies. *)

val tech_fingerprint : string -> string
(** Restart-stable fingerprint of a technology file's canonical text
    (process-local stamps like [Env.stamp] must never reach the disk). *)

val register_metrics : t -> unit
(** Register [store.records] / [store.bytes] gauges backed by this handle
    in the process-wide {!Amg_obs.Metrics} registry (event counters —
    hits, misses, recoveries, torn-tail truncations — are bumped
    unconditionally as they happen). *)
