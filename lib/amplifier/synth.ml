(* Netlist-to-layout synthesis: the whole environment as one function.

   Partition the schematic with the knowledge-based rules, generate each
   cluster with the module library, assign clusters to rows by device
   polarity (NMOS near the substrate taps at the bottom, PMOS near vdd at
   the top, bipolar/passives in the middle), and hand the rows to the
   generic {!Assembly} engine.  `amgen synth netlist.sp` drives this from
   a SPICE file. *)

module D = Amg_circuit.Device
module Netlist = Amg_circuit.Netlist
module Partition = Amg_circuit.Partition
module Rect = Amg_geometry.Rect
module Units = Amg_geometry.Units
module Lobj = Amg_layout.Lobj
module Env = Amg_core.Env

type report = {
  obj : Lobj.t;
  width_um : float;
  height_um : float;
  area_um2 : float;
  clusters : Partition.cluster list;
  routing : Amg_route.Global.result;
  build_time_s : float;
}

(* Which row a cluster belongs to, by its devices' type/polarity. *)
type row_class = Bottom | Middle | Top

let classify netlist (c : Partition.cluster) =
  let devs =
    List.filter_map (Netlist.find netlist) c.Partition.device_names
  in
  let has p = List.exists p devs in
  match c.Partition.style with
  (* Input pairs go in their own middle row: their drain straps face the
     channel below them, and they want channels on both sides (exactly the
     amplifier's hand floorplan). *)
  | Partition.Diff_pair_style | Partition.Common_centroid_style -> Middle
  | _ ->
      if has (function D.Mos m -> m.D.polarity = D.Nmos | _ -> false) then
        Bottom
      else if has (function D.Mos m -> m.D.polarity = D.Pmos | _ -> false)
      then Top
      else Middle

let build env ?(name = "synth") ?(hints = []) netlist =
  let t0 = Sys.time () in
  let clusters = Partition.partition ~hints netlist in
  if clusters = [] then
    Amg_robust.Diag.failf Amg_robust.Diag.Synth ~code:"synth.empty-netlist"
      ~hint:"the netlist must declare at least one MOS, resistor or \
             capacitor device"
      "Synth: netlist has no devices";
  let blocks =
    List.map (fun c -> (c, Blocks.generate env netlist c)) clusters
  in
  let of_class k =
    List.filter_map
      (fun (c, b) -> if classify netlist c = k then Some b else None)
      blocks
  in
  let rows =
    [ of_class Bottom; of_class Middle; of_class Top ]
    |> List.filter (fun r -> r <> [])
    |> List.mapi (fun i blocks ->
           Assembly.pack_row env ~name:(Printf.sprintf "row%d" i) blocks)
  in
  let asm = Assembly.assemble env ~name ~netlist ~rows () in
  let bbox = Lobj.bbox_exn asm.Assembly.obj in
  let t1 = Sys.time () in
  {
    obj = asm.Assembly.obj;
    width_um = Units.to_um (Rect.width bbox);
    height_um = Units.to_um (Rect.height bbox);
    area_um2 = float_of_int (Rect.area bbox) /. 1.0e6;
    clusters;
    routing = asm.Assembly.routing;
    build_time_s = t1 -. t0;
  }
