(* Interval-binned spatial index.  Rectangles are stored in local
   coordinates (world minus a running offset, so translating the whole
   index is an O(1) offset bump) and entered into the bins covered by
   their x-span and by their y-span.  A query gathers candidates from the
   cheaper axis and filters them against the window precisely.

   Bins hold immutable (key, rect) lists: the rectangle rides along so the
   query's precise filter runs without a table lookup per candidate, and
   [copy] shares the lists (they are replaced, never mutated), which keeps
   the object-copy in the optimizer's inner loop cheap. *)

type bins = (int, (int * Rect.t) list) Hashtbl.t

type t = {
  cell : int;
  mutable ox : int; (* world x = local x + ox *)
  mutable oy : int;
  rects : (int, Rect.t) Hashtbl.t; (* key -> local rect *)
  xbins : bins;
  ybins : bins;
  mutable xwide : (int * Rect.t) list; (* entries spanning > max_bins x-bins *)
  mutable ywide : (int * Rect.t) list;
}

(* A rectangle covering more bins than this on an axis goes to the axis's
   overflow list: entering a chip-wide rail into thousands of bins would
   cost more than testing it on every query. *)
let max_bins = 32

let create ?(cell = 4000) () =
  {
    cell = max 1 cell;
    ox = 0;
    oy = 0;
    rects = Hashtbl.create 32;
    xbins = Hashtbl.create 32;
    ybins = Hashtbl.create 32;
    xwide = [];
    ywide = [];
  }

let copy t =
  {
    t with
    rects = Hashtbl.copy t.rects;
    xbins = Hashtbl.copy t.xbins;
    ybins = Hashtbl.copy t.ybins;
  }

let cardinal t = Hashtbl.length t.rects
let mem t key = Hashtbl.mem t.rects key

let find t key =
  Option.map
    (fun r -> Rect.translate r ~dx:t.ox ~dy:t.oy)
    (Hashtbl.find_opt t.rects key)

(* Floor division, correct for negative coordinates. *)
let fdiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)

let bin_range t lo hi = (fdiv lo t.cell, fdiv hi t.cell)

let bin_add bins b entry =
  let cur = match Hashtbl.find_opt bins b with Some l -> l | None -> [] in
  Hashtbl.replace bins b (entry :: cur)

let bin_remove bins b key =
  match Hashtbl.find_opt bins b with
  | None -> ()
  | Some l -> (
      match List.filter (fun (k, _) -> k <> key) l with
      | [] -> Hashtbl.remove bins b
      | l' -> Hashtbl.replace bins b l')

let remove_wide wide key = List.filter (fun (k, _) -> k <> key) wide

let enter_x t entry (r : Rect.t) =
  let b0, b1 = bin_range t r.Rect.x0 r.Rect.x1 in
  if b1 - b0 >= max_bins then t.xwide <- entry :: t.xwide
  else
    for b = b0 to b1 do
      bin_add t.xbins b entry
    done

let enter_y t entry (r : Rect.t) =
  let b0, b1 = bin_range t r.Rect.y0 r.Rect.y1 in
  if b1 - b0 >= max_bins then t.ywide <- entry :: t.ywide
  else
    for b = b0 to b1 do
      bin_add t.ybins b entry
    done

let remove t key =
  match Hashtbl.find_opt t.rects key with
  | None -> ()
  | Some r ->
      Hashtbl.remove t.rects key;
      let xb0, xb1 = bin_range t r.Rect.x0 r.Rect.x1 in
      if xb1 - xb0 >= max_bins then t.xwide <- remove_wide t.xwide key
      else
        for b = xb0 to xb1 do
          bin_remove t.xbins b key
        done;
      let yb0, yb1 = bin_range t r.Rect.y0 r.Rect.y1 in
      if yb1 - yb0 >= max_bins then t.ywide <- remove_wide t.ywide key
      else
        for b = yb0 to yb1 do
          bin_remove t.ybins b key
        done

let insert t key rect =
  if Hashtbl.mem t.rects key then remove t key;
  let r = Rect.translate rect ~dx:(-t.ox) ~dy:(-t.oy) in
  Hashtbl.replace t.rects key r;
  let entry = (key, r) in
  enter_x t entry r;
  enter_y t entry r

let translate_all t ~dx ~dy =
  t.ox <- t.ox + dx;
  t.oy <- t.oy + dy

let query t rect ~margin =
  Amg_robust.Inject.(probe Sindex_query);
  if Hashtbl.length t.rects = 0 then []
  else begin
    (* Window in local coordinates, inflated once up front. *)
    let wx0 = rect.Rect.x0 - t.ox - margin
    and wx1 = rect.Rect.x1 - t.ox + margin
    and wy0 = rect.Rect.y0 - t.oy - margin
    and wy1 = rect.Rect.y1 - t.oy + margin in
    let scanned = ref 0 in
    let hits (key, (r : Rect.t)) acc =
      incr scanned;
      if
        r.Rect.x0 <= wx1 && wx0 <= r.Rect.x1 && r.Rect.y0 <= wy1
        && wy0 <= r.Rect.y1
      then key :: acc
      else acc
    in
    let xb0, xb1 = bin_range t wx0 wx1 in
    let yb0, yb1 = bin_range t wy0 wy1 in
    let scan bins wide b0 b1 =
      let acc = ref (List.fold_right hits wide []) in
      for b = b0 to b1 do
        match Hashtbl.find_opt bins b with
        | Some entries -> acc := List.fold_right hits entries !acc
        | None -> ()
      done;
      (* A rectangle appears once per covered bin of the scanned axis:
         sort (ascending keys, which downstream wants anyway) and drop
         duplicates. *)
      List.sort_uniq Int.compare !acc
    in
    (* Scan the axis covering fewer bins; a window much wider than the
       layout on one axis (the compactor's slab queries) then costs only
       the bounded axis's bins. *)
    let result =
      if xb1 - xb0 <= yb1 - yb0 then scan t.xbins t.xwide xb0 xb1
      else scan t.ybins t.ywide yb0 yb1
    in
    if Amg_obs.Obs.enabled () then begin
      Amg_obs.Obs.count "sindex.queries" 1;
      Amg_obs.Obs.count "sindex.scanned" !scanned;
      Amg_obs.Obs.count "sindex.hits" (List.length result)
    end;
    result
  end

let iter t f =
  Hashtbl.iter (fun key r -> f key (Rect.translate r ~dx:t.ox ~dy:t.oy)) t.rects

let bbox t =
  let acc = ref None in
  Hashtbl.iter
    (fun _ r ->
      acc := Some (match !acc with None -> r | Some h -> Rect.hull h r))
    t.rects;
  Option.map (fun r -> Rect.translate r ~dx:t.ox ~dy:t.oy) !acc
