type t = Rect.t list

let empty = []

let of_rects rs = List.filter (fun r -> not (Rect.is_degenerate r)) rs

let is_empty = function [] -> true | _ :: _ -> false

(* Residue of [solids] after removing every rectangle of [covers], by
   successive subtraction: exactly the procedure of the paper's Fig. 1.
   Each cover splits every remaining solid into at most four pieces; the rule
   is fulfilled when nothing remains. *)
let residue ~solids ~covers =
  let subtractions = ref 0 in
  let remove_cover remaining cover =
    subtractions := !subtractions + List.length remaining;
    List.concat_map (fun solid -> Rect.subtract solid cover) remaining
  in
  let r = List.fold_left remove_cover (of_rects solids) covers in
  if Amg_obs.Obs.enabled () then
    Amg_obs.Obs.count "region.cover_subtractions" !subtractions;
  r

let covered ~solids ~covers = is_empty (residue ~solids ~covers)

(* Union area by vertical-slab sweep over the compressed x coordinates.
   Within a slab, the covered y extent is the union of the y spans of the
   rectangles crossing the slab. *)
let area rects =
  let rects = of_rects rects in
  match rects with
  | [] -> 0
  | _ ->
      let xs =
        List.concat_map (fun (r : Rect.t) -> [ r.x0; r.x1 ]) rects
        |> List.sort_uniq compare
      in
      let rec slabs acc = function
        | x0 :: (x1 :: _ as rest) ->
            let w = x1 - x0 in
            let spans =
              List.filter_map
                (fun (r : Rect.t) ->
                  if r.x0 <= x0 && x1 <= r.x1 then Some (r.y0, r.y1) else None)
                rects
              |> List.sort compare
            in
            let covered_h =
              let rec go acc cur = function
                | [] -> (
                    match cur with None -> acc | Some (lo, hi) -> acc + hi - lo)
                | (y0, y1) :: tl -> (
                    match cur with
                    | None -> go acc (Some (y0, y1)) tl
                    | Some (lo, hi) ->
                        if y0 <= hi then go acc (Some (lo, max hi y1)) tl
                        else go (acc + hi - lo) (Some (y0, y1)) tl)
              in
              go 0 None spans
            in
            slabs (acc + (w * covered_h)) rest
        | _ -> acc
      in
      slabs 0 xs

let hull rects = Rect.hull_list (of_rects rects)

let contains_point rects ~x ~y =
  List.exists (fun r -> Rect.contains_point r ~x ~y) rects

let inter_rect rects clip = List.filter_map (Rect.inter clip) rects

let translate rects ~dx ~dy = List.map (fun r -> Rect.translate r ~dx ~dy) rects
