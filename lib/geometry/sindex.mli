(** Spatial index over integer-keyed rectangles.

    An interval-binned index for the candidate queries of the compactor,
    the design-rule checker and the extractor: each rectangle is entered
    into the bins its x-span and its y-span cover, and a window query
    gathers the bins of whichever axis covers fewer of them, then filters
    precisely.  Rectangles spanning very many bins on an axis go to that
    axis's overflow set instead, so degenerate geometry (full-width wells,
    supply rails) cannot blow up insertion or query cost.

    All operations are incremental: insert, remove and update touch only
    the bins of the affected rectangle, and translating the whole index is
    O(1) (a coordinate offset, not a re-binning).  Keys are arbitrary
    integers (shape ids, piece indices); the index never interprets them. *)

type t

val create : ?cell:int -> unit -> t
(** Fresh empty index.  [cell] is the bin pitch in the coordinate unit
    (default 4000, i.e. 4 µm for nanometre layouts). *)

val copy : t -> t
(** Independent copy; mutating either index never affects the other. *)

val cardinal : t -> int

val mem : t -> int -> bool

val find : t -> int -> Rect.t option
(** The rectangle currently stored under the key. *)

val insert : t -> int -> Rect.t -> unit
(** Enter (or re-enter) a rectangle under the key; an existing entry with
    the same key is replaced. *)

val remove : t -> int -> unit
(** Remove the key; absent keys are ignored. *)

val translate_all : t -> dx:int -> dy:int -> unit
(** Shift every stored rectangle.  O(1): maintained as an offset. *)

val query : t -> Rect.t -> margin:int -> int list
(** Keys of every rectangle within [margin] of the window, i.e. whose
    closed rectangle intersects the window inflated by [margin] on all
    sides.  Ascending key order; no key appears twice. *)

val iter : t -> (int -> Rect.t -> unit) -> unit

val bbox : t -> Rect.t option
(** Hull of every stored rectangle, or [None] when empty.  O(n). *)
