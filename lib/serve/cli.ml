(* Command-line front ends of the generator service, shared between
   `amgen serve` / `amgen request` and the standalone amgend daemon. *)

module Diag = Amg_robust.Diag
module Wire = Amg_robust.Wire
module Obs = Amg_obs.Obs
open Cmdliner

let exit_ok = 0
let exit_diag = 1
let exit_usage = 2

let convert_exn = function
  | Amg_core.Env.Rejected msg ->
      Some (Diag.v Diag.Layout ~code:"layout.rejected" msg)
  | Unix.Unix_error (e, fn, arg) ->
      Some
        (Diag.v Diag.Cli ~code:"cli.io-error"
           (Fmt.str "%s: %s%s" fn (Unix.error_message e)
              (if arg = "" then "" else " (" ^ arg ^ ")")))
  | Sys_error msg -> Some (Diag.v Diag.Cli ~code:"cli.io-error" msg)
  | Failure msg -> Some (Diag.v Diag.Cli ~code:"cli.error" msg)
  | e ->
      Some
        (Diag.v Diag.Internal ~code:"internal.uncaught"
           ~hint:"this is a bug in amgend; please report it"
           (Printexc.to_string e))

let read_file file =
  let ic = open_in file in
  let src = really_input_string ic (in_channel_length ic) in
  close_in ic;
  src

let int_at_least lo what =
  let parse s =
    match int_of_string_opt s with
    | Some v when v >= lo -> Ok v
    | Some v -> Error (`Msg (Fmt.str "%s must be >= %d, got %d" what lo v))
    | None -> Error (`Msg (Fmt.str "%s expects an integer, got %s" what s))
  in
  Arg.conv (parse, Format.pp_print_int)

(* --- shared arguments -------------------------------------------------- *)

let default_socket =
  Filename.concat (Filename.get_temp_dir_name ()) "amgend.sock"

let socket_arg =
  Arg.(
    value
    & opt string default_socket
    & info [ "s"; "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path of the daemon.")

(* --- serve ------------------------------------------------------------- *)

let tcp_conv =
  let parse s =
    match String.rindex_opt s ':' with
    | Some i -> (
        let host = String.sub s 0 i in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port with
        | Some p when p >= 0 && p <= 65535 ->
            Ok ((if host = "" then "127.0.0.1" else host), p)
        | _ -> Error (`Msg (Fmt.str "bad port in %S" s)))
    | None -> Error (`Msg (Fmt.str "expected HOST:PORT, got %S" s))
  in
  Arg.conv (parse, fun ppf (h, p) -> Format.fprintf ppf "%s:%d" h p)

let tcp_arg =
  Arg.(
    value
    & opt (some tcp_conv) None
    & info [ "tcp" ] ~docv:"HOST:PORT"
        ~doc:"Also listen on TCP (the Unix socket stays open).")

let library_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "f"; "file" ] ~docv:"FILE.amg"
        ~doc:
          "Module library the daemon serves entities from (default: the \
           built-in library).")

let tech_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "t"; "tech" ] ~docv:"FILE"
        ~doc:"Technology description file (default: built-in 1um BiCMOS).")

let jobs_arg =
  Arg.(
    value
    & opt (some (int_at_least 1 "--jobs")) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Default domain count for optimization searches of requests that \
           name none; results are identical for every value.")

let queue_limit_arg =
  Arg.(
    value
    & opt (int_at_least 1 "--queue-limit") 64
    & info [ "queue-limit" ] ~docv:"N"
        ~doc:
          "Admitted-but-unfinished build request cap; requests beyond it are \
           rejected with status 2.")

let max_frame_arg =
  Arg.(
    value
    & opt (int_at_least 256 "--max-frame") (1024 * 1024)
    & info [ "max-frame" ] ~docv:"BYTES"
        ~doc:
          "Request line byte cap; oversized frames get a status 2 response \
           and are discarded without dropping the connection.")

let memo_limit_arg =
  Arg.(
    value
    & opt (int_at_least 1 "--memo-limit") 128
    & info [ "memo-limit" ] ~docv:"N"
        ~doc:"Recorded canonical builds kept resident (LRU by signature).")

let tenant_limit_arg =
  Arg.(
    value
    & opt (int_at_least 1 "--tenant-limit") 64
    & info [ "tenant-limit" ] ~docv:"N"
        ~doc:
          "Tenant environments kept resident (LRU); an evicted tenant that \
           returns starts from a cold cache scope.")

let no_warm_arg =
  Arg.(
    value & flag
    & info [ "no-warm" ]
        ~doc:
          "Do not pre-spawn the shared domain pool at startup (the first \
           optimizing request pays the spawn cost instead).")

let cache_mb_arg =
  Arg.(
    value
    & opt (some (int_at_least 0 "--cache-mb")) None
    & info [ "cache-mb" ] ~docv:"MB"
        ~doc:
          "Byte budget (MiB) of the resident prefix cache shared by all \
           requests; 0 disables it.  Results are identical either way.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Print the instrumentation summary after shutdown.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record the daemon's lifetime as a Chrome trace-event JSON file \
           (written at shutdown; validate with amgen trace-lint).")

let trace_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-dir" ] ~docv:"DIR"
        ~doc:
          "Directory for per-request Chrome traces (one FILE per sampled or \
           slow request, named by request id; created if absent).")

let trace_sample_arg =
  Arg.(
    value
    & opt (int_at_least 0 "--trace-sample") 0
    & info [ "trace-sample" ] ~docv:"N"
        ~doc:
          "With --trace-dir: export every N-th request's trace (0, the \
           default, samples none).")

let slow_ms_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "slow-ms" ] ~docv:"MS"
        ~doc:
          "With --trace-dir: also export the trace of any request that took \
           at least MS milliseconds.")

let access_log_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "access-log" ] ~docv:"FILE"
        ~doc:
          "Append one JSON line per request (id, tenant, op, status, cache \
           outcome, latency, queue wait, evals, cache hits/misses).  \
           Reopened on SIGHUP for log rotation.")

let store_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"FILE"
        ~doc:
          "Durable result store (created if absent): best compaction orders \
           survive restarts, so previously-served optimized builds answer \
           warm even after kill -9.  Checkpointed on SIGUSR1 and at \
           graceful shutdown; inspect with amgen store.")

let sweep_limit_arg =
  Arg.(
    value
    & opt (int_at_least 1 "--sweep-limit") 256
    & info [ "sweep-limit" ] ~docv:"N"
        ~doc:
          "Largest parameter grid a sweep request may expand to; larger \
           specs are rejected with status 2 before any compute runs.")

let run_serve socket tcp library tech jobs queue_limit max_frame memo_limit
    tenant_limit no_warm cache_mb stats trace trace_dir trace_sample slow_ms
    access_log store sweep_limit =
  Option.iter Amg_core.Prefix_cache.set_default_budget_mb cache_mb;
  let on = stats || trace <> None in
  if on then Obs.enable ();
  let finish () =
    if on then begin
      Obs.disable ();
      Option.iter
        (fun path ->
          Amg_obs.Trace.write path;
          Fmt.pr "wrote %s@." path)
        trace;
      if stats then Fmt.pr "%a" Obs.pp_stats ()
    end
  in
  let result =
    Diag.guard ~convert:convert_exn (fun () ->
        let source, source_file =
          match library with
          | None -> (Amg_lang.Stdlib.all, None)
          | Some f -> (read_file f, Some f)
        in
        let tech = Option.map Amg_tech.Tech_file.load tech in
        let cfg =
          Server.config ?tcp ~source ?source_file ?tech ?default_jobs:jobs
            ~queue_limit ~max_frame ~memo_limit ~tenant_limit
            ~warm_pool:(not no_warm) ?trace_dir ~trace_sample ?slow_ms
            ?access_log ?store ~sweep_limit socket
        in
        Fmt.pr "amgend: serving on %s%s@." socket
          (match tcp with
          | None -> ""
          | Some (h, p) -> Fmt.str " and %s:%d" h p);
        Server.run cfg;
        Fmt.pr "amgend: shut down@.";
        exit_ok)
  in
  finish ();
  match result with
  | Ok code -> code
  | Error d ->
      Fmt.epr "%a@." Diag.pp d;
      exit_diag

let serve_term =
  Term.(
    const run_serve $ socket_arg $ tcp_arg $ library_arg $ tech_arg $ jobs_arg
    $ queue_limit_arg $ max_frame_arg $ memo_limit_arg $ tenant_limit_arg
    $ no_warm_arg $ cache_mb_arg $ stats_arg $ trace_arg $ trace_dir_arg
    $ trace_sample_arg $ slow_ms_arg $ access_log_arg $ store_arg
    $ sweep_limit_arg)

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the generator daemon: newline-delimited JSON requests over a \
          Unix-domain socket, served against the resident prefix cache.  \
          SIGTERM/SIGINT shut down gracefully; SIGUSR1 checkpoints the \
          --store; SIGHUP reopens the --access-log.")
    serve_term

(* --- request ----------------------------------------------------------- *)

let entity_arg =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"ENTITY" ~doc:"Entity to build (see the daemon's --file).")

let params_arg =
  let doc = "Entity parameter, e.g. -p W=10 or -p layer=poly (numbers in um)." in
  Arg.(value & opt_all string [] & info [ "p"; "param" ] ~docv:"K=V" ~doc)

let optimize_arg =
  let modes =
    [ ("orders", Wire.Orders); ("bb", Wire.Bb); ("local", Wire.Local) ]
  in
  Arg.(
    value
    & opt (some (enum modes)) None
    & info [ "optimize" ] ~docv:"MODE"
        ~doc:
          "Compaction-order search mode: $(b,orders), $(b,bb) or $(b,local).")

let max_evals_arg =
  Arg.(
    value
    & opt (some (int_at_least 0 "--max-evals")) None
    & info [ "max-evals" ] ~docv:"N"
        ~doc:"Per-request evaluation budget; exhaustion degrades to status 3.")

let max_time_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "max-time" ] ~docv:"SEC"
        ~doc:"Per-request wall-clock deadline; overrun degrades to status 3.")

let tenant_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tenant" ] ~docv:"NAME"
        ~doc:
          "Cache scope: requests of different tenants never share cached \
           prefixes or memoized builds.")

let format_arg =
  let formats =
    [ ("cif", Wire.Cif); ("svg", Wire.Svg); ("none", Wire.No_payload) ]
  in
  Arg.(
    value
    & opt (enum formats) Wire.Cif
    & info [ "format" ] ~docv:"FMT"
        ~doc:"Payload rendering: $(b,cif) (default), $(b,svg) or $(b,none).")

let id_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "id" ] ~docv:"ID" ~doc:"Request id, echoed in the response.")

let rstats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Ask for timing and cache counters; printed to stderr.")

let permissive_arg =
  Arg.(
    value & flag
    & info [ "permissive" ]
        ~doc:"Degrade instead of failing on placement errors (per request).")

let inject_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "inject" ] ~docv:"SPEC"
        ~doc:
          "Fault-injection spec for this request ($(b,seed:N) or \
           SITE@HIT,...), for drills.")

let sweep_spec_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "sweep" ] ~docv:"SPEC"
        ~doc:
          "Run a parameter-grid sweep server-side instead of a build: send \
           the JSON spec in FILE, stream the columnar result (header, \
           column line, rows) to stdout or --out as the daemon completes \
           each canonical prefix.")

let ping_arg =
  Arg.(value & flag & info [ "ping" ] ~doc:"Liveness check instead of a build.")

let stop_arg =
  Arg.(
    value & flag
    & info [ "stop" ] ~doc:"Ask the daemon to shut down gracefully.")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE"
        ~doc:"Write the payload to FILE instead of stdout.")

let retries_arg =
  Arg.(
    value
    & opt (int_at_least 1 "--retries") 1
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Total connect attempts on transient failures (ECONNREFUSED, \
           ECONNRESET, missing socket) with exponential, deterministically \
           jittered backoff — enough to ride through a daemon restart.  \
           Default 1: fail fast.")

let parse_params params =
  List.map
    (fun kv ->
      match String.index_opt kv '=' with
      | None -> Error (Fmt.str "bad parameter %s (expected k=v)" kv)
      | Some i ->
          let k = String.sub kv 0 i
          and v = String.sub kv (i + 1) (String.length kv - i - 1) in
          Ok
            ( k,
              match float_of_string_opt v with
              | Some f -> Wire.Pnum f
              | None -> Wire.Pstr v ))
    params
  |> List.fold_left
       (fun acc p ->
         match (acc, p) with
         | Error e, _ | _, Error e -> Error e
         | Ok ps, Ok p -> Ok (p :: ps))
       (Ok [])
  |> Result.map List.rev

(* Sweep exchanges are streams, not one-line roundtrips: connect (with
   the same retry policy as oneshot), forward every row event line's
   payload to the sink, then report the final response like a build. *)
let run_sweep_request socket spec_file id jobs tenant rstats out retries =
  let spec = read_file spec_file in
  let req = Wire.sweep ?id ?jobs ?tenant ~stats:rstats spec in
  let oc, close_oc =
    match out with
    | None -> (stdout, fun () -> flush stdout)
    | Some path ->
        let oc = open_out path in
        (oc, fun () -> close_out oc)
  in
  let answer =
    try
      let c = Client.connect_retry ~attempts:retries socket in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          Client.sweep c
            ~on_row:(fun ~index:_ line ->
              output_string oc line;
              output_char oc '\n')
            req)
    with Unix.Unix_error (e, _, _) ->
      Error (Fmt.str "%s: %s" socket (Unix.error_message e))
  in
  close_oc ();
  match answer with
  | Error msg ->
      Fmt.epr "amgen: request failed: %s@." msg;
      exit_diag
  | Ok resp ->
      List.iter (fun d -> Fmt.epr "%a@." Diag.pp d) resp.Wire.diagnostics;
      Option.iter (fun p -> Fmt.epr "sweep %s@." p) resp.Wire.payload;
      Option.iter
        (fun (s : Wire.server_stats) ->
          Fmt.epr
            "served in %.1f ms, queue depth %d, cache %d hits / %d misses@."
            s.Wire.elapsed_ms s.Wire.queue_depth s.Wire.cache_hits
            s.Wire.cache_misses)
        resp.Wire.stats;
      (match (out, resp.Wire.status) with
      | Some path, (0 | 3) -> Fmt.epr "wrote %s@." path
      | _ -> ());
      resp.Wire.status

let run_request socket ping stop sweep entity params optimize max_evals
    max_time jobs tenant format id rstats permissive inject out retries =
  match sweep with
  | Some spec_file when not (ping || stop) ->
      run_sweep_request socket spec_file id jobs tenant rstats out retries
  | _ ->
  let req =
    match (ping, stop, entity, sweep) with
    | _, _, _, Some _ -> Error "--sweep is mutually exclusive with --ping/--stop"
    | true, true, _, _ -> Error "--ping and --stop are mutually exclusive"
    | true, false, _, _ -> Ok (Wire.ping ?id ())
    | false, true, _, _ -> Ok (Wire.stop ?id ())
    | false, false, None, _ ->
        Error "an ENTITY is required unless --ping/--stop/--sweep"
    | false, false, Some entity, _ ->
        Result.map
          (fun params ->
            Wire.build ?id ~params ?optimize ?max_evals ?max_time ?jobs ?tenant
              ~format ~permissive ~stats:rstats ?inject entity)
          (parse_params params)
  in
  match req with
  | Error msg ->
      Fmt.epr "amgen: %s@." msg;
      exit_usage
  | Ok req -> (
      let answer =
        try Client.oneshot ~attempts:retries socket req
        with Unix.Unix_error (e, _, _) ->
          Error (Fmt.str "%s: %s" socket (Unix.error_message e))
      in
      match answer with
      | Error msg ->
          Fmt.epr "amgen: request failed: %s@." msg;
          exit_diag
      | Ok resp ->
          List.iter
            (fun d -> Fmt.epr "%a@." Diag.pp d)
            resp.Wire.diagnostics;
          Option.iter (fun r -> Fmt.epr "rating %g@." r) resp.Wire.rating;
          Option.iter
            (fun (s : Wire.server_stats) ->
              Fmt.epr
                "served in %.1f ms, queue depth %d, cache %d hits / %d \
                 misses@."
                s.Wire.elapsed_ms s.Wire.queue_depth s.Wire.cache_hits
                s.Wire.cache_misses)
            resp.Wire.stats;
          (match (resp.Wire.payload, out) with
          | Some p, None -> print_string p
          | Some p, Some path ->
              let oc = open_out path in
              output_string oc p;
              close_out oc;
              Fmt.epr "wrote %s@." path
          | None, _ -> ());
          resp.Wire.status)

let request_cmd =
  Cmd.v
    (Cmd.info "request"
       ~doc:
         "Send one request to a running daemon and exit with the response \
          status (0 ok, 1 diagnostics, 2 rejected, 3 degraded).  The \
          payload goes to stdout, everything else to stderr.")
    Term.(
      const run_request $ socket_arg $ ping_arg $ stop_arg $ sweep_spec_arg
      $ entity_arg $ params_arg $ optimize_arg $ max_evals_arg $ max_time_arg $ jobs_arg
      $ tenant_arg $ format_arg $ id_arg $ rstats_arg $ permissive_arg
      $ inject_arg $ out_arg $ retries_arg)

(* --- metrics / health -------------------------------------------------- *)

(* One scrape request; the payload (Prometheus text or JSON) goes to
   stdout verbatim, so the commands compose with curl-style tooling. *)
let run_scrape socket req =
  let answer =
    try Client.oneshot socket req
    with Unix.Unix_error (e, _, _) ->
      Error (Fmt.str "%s: %s" socket (Unix.error_message e))
  in
  match answer with
  | Error msg ->
      Fmt.epr "amgen: request failed: %s@." msg;
      exit_diag
  | Ok resp ->
      List.iter (fun d -> Fmt.epr "%a@." Diag.pp d) resp.Wire.diagnostics;
      (match resp.Wire.payload with
      | Some p ->
          print_string p;
          if String.length p > 0 && p.[String.length p - 1] <> '\n' then
            print_newline ()
      | None -> ());
      resp.Wire.status

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Emit the registry snapshot as JSON instead of the Prometheus text \
           exposition.")

let metrics_cmd =
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Scrape a running daemon's metrics registry (counters, gauges, \
          latency histograms).  Answered without queueing behind compute.")
    Term.(
      const (fun socket json -> run_scrape socket (Wire.metrics ~json ()))
      $ socket_arg $ json_arg)

let health_cmd =
  Cmd.v
    (Cmd.info "health"
       ~doc:
         "Probe a running daemon's liveness: uptime, served count, queue \
          depth, resident tenants and memo entries, pool size.  Answered \
          without queueing behind compute.")
    Term.(const (fun socket -> run_scrape socket (Wire.health ())) $ socket_arg)

(* --- the standalone daemon --------------------------------------------- *)

let daemon_main () =
  let doc = "analog module generator daemon" in
  let exits =
    [
      Cmd.Exit.info exit_ok ~doc:"on graceful shutdown.";
      Cmd.Exit.info exit_diag ~doc:"on startup failures (bad source/deck).";
      Cmd.Exit.info exit_usage ~doc:"on command-line usage errors.";
    ]
  in
  let info = Cmd.info "amgend" ~version:"1.0.0" ~doc ~exits in
  let code = Cmd.eval' (Cmd.v info serve_term) in
  if code = Cmd.Exit.cli_error then exit_usage else code
