(** Minimal blocking client for the generator service.

    One connection carries any number of request/response exchanges; the
    daemon answers on the same connection in request order, so a
    closed-loop caller can simply alternate {!send} and {!recv}. *)

type t

val connect : string -> t
(** Connect to a Unix-domain socket path.
    @raise Unix.Unix_error when the daemon is not listening. *)

val connect_tcp : string -> int -> t
(** Connect to the optional TCP listener. *)

val close : t -> unit

val send_line : t -> string -> unit
(** Write one raw request line (the newline is appended).  For protocol
    tests that need to send malformed frames. *)

val send_raw : t -> string -> unit
(** Write raw bytes with no newline — for truncated-frame tests. *)

val recv_line : t -> string option
(** Read one raw response line; [None] on EOF. *)

val send : t -> Amg_robust.Wire.request -> unit

val recv : t -> (Amg_robust.Wire.response, string) Stdlib.result
(** Decode the next response line; [Error] on EOF or malformed JSON. *)

val roundtrip :
  t -> Amg_robust.Wire.request -> (Amg_robust.Wire.response, string) Stdlib.result

val oneshot :
  string -> Amg_robust.Wire.request -> (Amg_robust.Wire.response, string) Stdlib.result
(** Connect to a socket path, exchange one request, close. *)
