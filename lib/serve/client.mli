(** Minimal blocking client for the generator service.

    One connection carries any number of request/response exchanges; the
    daemon answers on the same connection in request order, so a
    closed-loop caller can simply alternate {!send} and {!recv}. *)

type t

val connect : string -> t
(** Connect to a Unix-domain socket path.  A signal arriving mid-connect
    is handled (the completion is awaited), not surfaced as [EINTR].
    @raise Unix.Unix_error when the daemon is not listening. *)

val connect_tcp : string -> int -> t
(** Connect to the optional TCP listener. *)

val connect_retry :
  ?attempts:int ->
  ?delay:float ->
  ?seed:int ->
  ?on_retry:(int -> unit) ->
  string ->
  t
(** {!connect} with bounded retry on transient failures — ECONNREFUSED,
    ECONNRESET and ENOENT, the three shapes of "the daemon is
    restarting".  Up to [attempts] (default 5) tries, sleeping an
    exponentially growing, deterministically jittered delay (base
    [delay], default 50 ms; jitter is a pure function of [seed]) between
    them; [on_retry] is called with the retry number before each sleep.
    The last failure is re-raised unchanged. *)

val close : t -> unit

val send_line : t -> string -> unit
(** Write one raw request line (the newline is appended).  For protocol
    tests that need to send malformed frames. *)

val send_raw : t -> string -> unit
(** Write raw bytes with no newline — for truncated-frame tests. *)

val recv_line : t -> string option
(** Read one raw response line; [None] on EOF. *)

val send : t -> Amg_robust.Wire.request -> unit

val recv : t -> (Amg_robust.Wire.response, string) Stdlib.result
(** Decode the next response line; [Error] on EOF or malformed JSON. *)

val roundtrip :
  t -> Amg_robust.Wire.request -> (Amg_robust.Wire.response, string) Stdlib.result

val sweep :
  t ->
  on_row:(index:int -> string -> unit) ->
  Amg_robust.Wire.request ->
  (Amg_robust.Wire.response, string) Stdlib.result
(** Exchange one sweep request ({!Amg_robust.Wire.sweep}): forward every
    streamed row event to [on_row] — [index] counts output lines from 0
    (the schema header, the column line, then the data rows) in
    canonical walk order — and return the final response that follows
    the stream.  [Error] on EOF or a malformed final line. *)

val oneshot :
  ?attempts:int ->
  ?delay:float ->
  ?seed:int ->
  string ->
  Amg_robust.Wire.request ->
  (Amg_robust.Wire.response, string) Stdlib.result
(** Connect to a socket path, exchange one request, close.  With
    [attempts > 1] (default 1: fail fast), transient connect failures
    and an EOF before any response byte are retried with the same
    deterministic jittered backoff as {!connect_retry} — enough for a
    client to ride through a daemon restart.  Requests are idempotent
    (the service is deterministic), so a re-send never changes the
    answer. *)
