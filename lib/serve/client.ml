module Wire = Amg_robust.Wire

type t = { fd : Unix.file_descr; buf : Buffer.t; chunk : Bytes.t }

let of_fd fd = { fd; buf = Buffer.create 512; chunk = Bytes.create 8192 }

(* A signal during connect(2) leaves the connection completing in the
   background (POSIX forbids re-calling connect on the socket): wait for
   writability, then read the final status from SO_ERROR. *)
let await_connect fd =
  let rec wait () =
    match Unix.select [] [ fd ] [] (-1.) with
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
  in
  wait ();
  match Unix.getsockopt_error fd with
  | None -> ()
  | Some err -> raise (Unix.Unix_error (err, "connect", ""))

let connect_addr domain addr =
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try
     try Unix.connect fd addr
     with Unix.Unix_error (Unix.EINTR, _, _) -> await_connect fd
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  of_fd fd

let connect path = connect_addr Unix.PF_UNIX (Unix.ADDR_UNIX path)

let connect_tcp host port =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } -> Unix.inet_addr_loopback
      | h -> h.Unix.h_addr_list.(0))
  in
  connect_addr Unix.PF_INET (Unix.ADDR_INET (addr, port))

(* --- bounded retry with deterministic jittered backoff ------------------

   Transient connect failures are what a client sees across a daemon
   restart: nothing is listening yet (ECONNREFUSED), the old socket file
   is gone (ENOENT), or the dying daemon reset us (ECONNRESET).  The
   backoff doubles per attempt and is jittered by a seeded LCG — the
   exact delay sequence is a pure function of [seed], so tests (and
   the serving benchmark) stay reproducible. *)

let transient = function
  | Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ENOENT), _, _)
    ->
      true
  | _ -> false

let backoff_delay ~base ~seed attempt =
  let s = ref (((seed * 2654435761) + attempt + 1) land 0x3FFFFFFF) in
  let next () =
    s := ((!s * 1664525) + 1013904223) land 0x3FFFFFFF;
    !s
  in
  let jitter = float_of_int (next () mod 1024) /. 1024. in
  base *. (2. ** float_of_int attempt) *. (0.5 +. (0.5 *. jitter))

let connect_retry ?(attempts = 5) ?(delay = 0.05) ?(seed = 1) ?on_retry path =
  let rec go i =
    try connect path
    with e when transient e && i + 1 < attempts ->
      (match on_retry with Some f -> f (i + 1) | None -> ());
      Unix.sleepf (backoff_delay ~base:delay ~seed i);
      go (i + 1)
  in
  go 0

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send_raw t s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write t.fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let send_line t line = send_raw t (line ^ "\n")

let recv_line t =
  let rec go () =
    let data = Buffer.contents t.buf in
    match String.index_opt data '\n' with
    | Some i ->
        let rest = String.sub data (i + 1) (String.length data - i - 1) in
        Buffer.clear t.buf;
        Buffer.add_string t.buf rest;
        Some (String.sub data 0 i)
    | None -> (
        match Unix.read t.fd t.chunk 0 (Bytes.length t.chunk) with
        | 0 -> None
        | n ->
            Buffer.add_subbytes t.buf t.chunk 0 n;
            go ()
        | exception Unix.Unix_error (EINTR, _, _) -> go ()
        | exception Unix.Unix_error ((ECONNRESET | EBADF | EPIPE), _, _) ->
            None)
  in
  go ()

let send t req = send_line t (Wire.encode_request req)

let recv t =
  match recv_line t with
  | None -> Error "connection closed"
  | Some line -> Wire.decode_response line

let roundtrip t req =
  send t req;
  recv t

(* A sweep answer is a stream: zero or more row event lines, then the
   ordinary response line.  Rows are forwarded in arrival order — which
   the daemon guarantees is canonical walk order — and the first line
   that is not a row event terminates the stream. *)
let sweep t ~on_row req =
  send t req;
  let rec loop () =
    match recv_line t with
    | None -> Error "connection closed"
    | Some line -> (
        match Wire.decode_sweep_row line with
        | Some (index, row) ->
            on_row ~index row;
            loop ()
        | None -> Wire.decode_response line)
  in
  loop ()

let oneshot ?(attempts = 1) ?(delay = 0.05) ?(seed = 1) path req =
  let rec go i =
    let retryable = i + 1 < attempts in
    let pause () = Unix.sleepf (backoff_delay ~base:delay ~seed i) in
    match connect path with
    | exception e when transient e && retryable ->
        pause ();
        go (i + 1)
    | t -> (
        match
          Fun.protect ~finally:(fun () -> close t) (fun () -> roundtrip t req)
        with
        (* EOF before any response byte: the daemon went down between
           accept and answer.  Requests are idempotent (the service is
           deterministic), so re-dialing is safe. *)
        | Error "connection closed" when retryable ->
            pause ();
            go (i + 1)
        | exception e when transient e && retryable ->
            pause ();
            go (i + 1)
        | r -> r)
  in
  go 0
