module Wire = Amg_robust.Wire

type t = { fd : Unix.file_descr; buf : Buffer.t; chunk : Bytes.t }

let of_fd fd = { fd; buf = Buffer.create 512; chunk = Bytes.create 8192 }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  of_fd fd

let connect_tcp host port =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } -> Unix.inet_addr_loopback
      | h -> h.Unix.h_addr_list.(0))
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (addr, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  of_fd fd

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send_raw t s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      let w = Unix.write t.fd b off (n - off) in
      go (off + w)
  in
  go 0

let send_line t line = send_raw t (line ^ "\n")

let recv_line t =
  let rec go () =
    let data = Buffer.contents t.buf in
    match String.index_opt data '\n' with
    | Some i ->
        let rest = String.sub data (i + 1) (String.length data - i - 1) in
        Buffer.clear t.buf;
        Buffer.add_string t.buf rest;
        Some (String.sub data 0 i)
    | None -> (
        match Unix.read t.fd t.chunk 0 (Bytes.length t.chunk) with
        | 0 -> None
        | n ->
            Buffer.add_subbytes t.buf t.chunk 0 n;
            go ()
        | exception Unix.Unix_error ((ECONNRESET | EBADF | EPIPE), _, _) ->
            None)
  in
  go ()

let send t req = send_line t (Wire.encode_request req)

let recv t =
  match recv_line t with
  | None -> Error "connection closed"
  | Some line -> Wire.decode_response line

let roundtrip t req =
  send t req;
  recv t

let oneshot path req =
  let t = connect path in
  Fun.protect ~finally:(fun () -> close t) (fun () -> roundtrip t req)
