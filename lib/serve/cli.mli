(** Cmdliner front ends of the generator service.

    [serve_cmd] and [request_cmd] plug into amgen's command group;
    [daemon_main] is the whole CLI of the standalone amgend binary (the
    serve options at top level, no subcommand). *)

val serve_cmd : int Cmdliner.Cmd.t
val request_cmd : int Cmdliner.Cmd.t

val metrics_cmd : int Cmdliner.Cmd.t
(** [amgen metrics [--json]]: scrape a running daemon's metrics
    registry (Prometheus text by default). *)

val health_cmd : int Cmdliner.Cmd.t
(** [amgen health]: liveness/readiness probe of a running daemon. *)

val daemon_main : unit -> int
(** Evaluate the daemon command line and return the process exit code. *)
