(* The generator service.  One system thread per connection does blocking
   line I/O; build requests funnel through a bounded FIFO ticket queue and
   run one at a time.  Serialized compute is a deliberate choice, not a
   shortcut: the engine's request-scoped state is process-global (the
   policy sink, the fault-injection schedule, Obs strand routing), the
   searches already parallelize internally over the domain pool, and the
   §7 determinism contract — identical bytes for every jobs value and
   arrival order — follows directly when requests cannot interleave.

   Warmth across requests comes from two resident structures, both touched
   only from the serialized section (so they need no locks):

   - per-tenant environments: each tenant gets its own [Env.t], whose
     stamp keys the prefix-cache scope — tenants can never hit each
     other's entries;
   - a memo of recorded canonical builds keyed by (tenant, entity,
     params): repeated requests replay the same frozen step list, so
     their searches share cached prefixes across requests
     ([Optimize.env_scope]). *)

module Diag = Amg_robust.Diag
module Policy = Amg_robust.Policy
module Budget = Amg_robust.Budget
module Inject = Amg_robust.Inject
module Wire = Amg_robust.Wire
module J = Amg_robust.Diag.Json
module Obs = Amg_obs.Obs
module Metrics = Amg_obs.Metrics
module Trace = Amg_obs.Trace
module Env = Amg_core.Env
module Optimize = Amg_core.Optimize
module Prefix_cache = Amg_core.Prefix_cache
module Rating = Amg_core.Rating
module Lobj = Amg_layout.Lobj
module Pool = Amg_parallel.Pool
module Store = Amg_store.Store
module Sweep = Amg_sweep.Sweep

type config = {
  socket_path : string;
  tcp : (string * int) option;
  source : string;
  source_file : string option;
  tech : Amg_tech.Technology.t option;
  default_jobs : int option;
  queue_limit : int;
  max_frame : int;
  memo_limit : int;
  tenant_limit : int;
  warm_pool : bool;
  trace_dir : string option;
  trace_sample : int;
  slow_ms : float option;
  access_log : string option;
  store : string option;
  sweep_limit : int;
}

let config ?tcp ?(source = Amg_lang.Stdlib.all) ?source_file ?tech
    ?default_jobs ?(queue_limit = 64) ?(max_frame = 1 lsl 20)
    ?(memo_limit = 128) ?(tenant_limit = 64) ?(warm_pool = false) ?trace_dir
    ?(trace_sample = 0) ?slow_ms ?access_log ?store ?(sweep_limit = 256)
    socket_path =
  {
    socket_path;
    tcp;
    source;
    source_file;
    tech;
    default_jobs;
    queue_limit;
    max_frame;
    memo_limit;
    tenant_limit;
    warm_pool;
    trace_dir;
    trace_sample;
    slow_ms;
    access_log;
    store;
    sweep_limit = max 1 sweep_limit;
  }

(* --- FIFO admission queue --------------------------------------------- *)

type sched = {
  s_lock : Mutex.t;
  s_turn : Condition.t;
  mutable s_next : int;  (* next ticket to hand out *)
  mutable s_serving : int;  (* ticket allowed to run now *)
  mutable s_inflight : int;  (* admitted, not yet released *)
  s_limit : int;
}

let sched_create limit =
  {
    s_lock = Mutex.create ();
    s_turn = Condition.create ();
    s_next = 0;
    s_serving = 0;
    s_inflight = 0;
    s_limit = max 1 limit;
  }

(* Returns [Some depth] (requests ahead at admission) once it is our
   turn, or [None] when the queue is full. *)
let sched_admit s =
  Mutex.lock s.s_lock;
  if s.s_inflight >= s.s_limit then begin
    Mutex.unlock s.s_lock;
    None
  end
  else begin
    let ticket = s.s_next in
    s.s_next <- ticket + 1;
    s.s_inflight <- s.s_inflight + 1;
    let depth = ticket - s.s_serving in
    while s.s_serving <> ticket do
      Condition.wait s.s_turn s.s_lock
    done;
    Mutex.unlock s.s_lock;
    Some depth
  end

let sched_release s =
  Mutex.lock s.s_lock;
  s.s_serving <- s.s_serving + 1;
  s.s_inflight <- s.s_inflight - 1;
  Condition.broadcast s.s_turn;
  Mutex.unlock s.s_lock

(* (admitted-but-unfinished, waiting-behind-the-running-one).  Safe to
   call from any thread: the lock is only ever held for pointer-sized
   updates, never across compute ([sched_admit] waits on the condition
   variable with the lock released). *)
let sched_counts s =
  Mutex.lock s.s_lock;
  let inflight = s.s_inflight in
  Mutex.unlock s.s_lock;
  (inflight, max 0 (inflight - 1))

(* --- recorded-build memo ---------------------------------------------- *)

type memo_entry = {
  m_obj : Lobj.t;  (* canonical build; never mutated after capture *)
  m_recorded : (Amg_lang.Interp.recorded, string) result;
  m_diags : Diag.t list;  (* warnings the canonical build reported *)
  mutable m_best : (Wire.opt_mode * (Lobj.t * Diag.t list)) list;
      (* finished unbudgeted search results per mode: final layout and
         the full diagnostic report of the request that produced it *)
  mutable m_tick : int;  (* LRU clock *)
}

(* --- connection registry ---------------------------------------------- *)

type conn = {
  c_fd : Unix.file_descr;
  mutable c_busy : bool;  (* inside admission/compute/write *)
  mutable c_thread : Thread.t option;
}

type t = {
  cfg : config;
  program : Amg_lang.Ast.program;
  env_default : Env.t;
  tenants : (string, Env.t * int ref) Hashtbl.t;  (* serialized section only *)
  memo : (string, memo_entry) Hashtbl.t;  (* serialized section only *)
  mutable memo_tick : int;
  mutable tenant_tick : int;
  sched : sched;
  listeners : Unix.file_descr list;
  (* Self-pipe: closing [wake_w] makes [wake_r] readable, which is how
     [stop] interrupts acceptors parked in select — closing a listener
     does NOT wake a thread blocked in accept on Linux. *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutable acceptors : Thread.t list;
  conns_lock : Mutex.t;
  mutable conns : conn list;
  stopping : bool Atomic.t;
  stopped : bool Atomic.t;
  served_count : int Atomic.t;
  (* --- telemetry ---
     The scrape ops answer from any connection thread, concurrently with
     serialized compute, so everything they read is either atomic or
     behind a short-lived lock.  [tenant_count]/[memo_count]/[best_count]
     mirror the sizes of the serialized-section hash tables (scanning the
     tables themselves from another thread would race with resizes). *)
  started_at : float;
  req_seq : int Atomic.t;
  tenant_count : int Atomic.t;
  memo_count : int Atomic.t;
  best_count : int Atomic.t;
  (* The channel is behind a ref so SIGHUP can swing it to a freshly
     opened file (log rotation) without touching every writer: writers
     take the lock, then deref. *)
  access : (Mutex.t * out_channel ref) option;
  obs_owned : bool;  (* this server enabled Obs (for traces/access log) *)
  (* Durable result store: loaded before the listeners open (a warm
     restart answers its first request from disk), checkpointed on
     SIGUSR1 and on drain.  The handle is internally locked — worker
     threads append while the wait loop checkpoints. *)
  result_store : Store.t option;
  tech_fp : string;  (* restart-stable store key prefix, not Env.stamp *)
  checkpoint_req : bool Atomic.t;  (* set by SIGUSR1, drained by [wait] *)
  reopen_req : bool Atomic.t;  (* set by SIGHUP, drained by [wait] *)
}

let served t = Atomic.get t.served_count
let socket_path t = t.cfg.socket_path
let request_stop t = Atomic.set t.stopping true
let stop_requested t = Atomic.get t.stopping

let pool_size t =
  match t.cfg.default_jobs with Some j -> j | None -> Pool.default_domains ()

(* --- line I/O --------------------------------------------------------- *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      let w = Unix.write fd b off (n - off) in
      go (off + w)
  in
  go 0

let send_response conn resp =
  write_all conn.c_fd (Wire.encode_response resp ^ "\n")

(* A per-connection buffered line reader.  Returns [`Line l], [`Oversized]
   (the offending line has been discarded up to and including its
   newline, so the stream is re-synchronized), or [`Eof]. *)
type reader = {
  r_fd : Unix.file_descr;
  r_buf : Buffer.t;
  r_chunk : Bytes.t;
  r_max : int;
  mutable r_skipping : bool;
}

let reader fd max_frame =
  {
    r_fd = fd;
    r_buf = Buffer.create 512;
    r_chunk = Bytes.create 8192;
    r_max = max_frame;
    r_skipping = false;
  }

let rec read_line r =
  let data = Buffer.contents r.r_buf in
  match String.index_opt data '\n' with
  | Some i ->
      let rest = String.sub data (i + 1) (String.length data - i - 1) in
      Buffer.clear r.r_buf;
      Buffer.add_string r.r_buf rest;
      if r.r_skipping then begin
        r.r_skipping <- false;
        `Oversized
      end
      else if i > r.r_max then `Oversized
      else `Line (String.sub data 0 i)
  | None ->
      if String.length data > r.r_max && not r.r_skipping then begin
        (* Discard the oversized frame but keep the connection: drop
           what we have and keep dropping until the next newline. *)
        Buffer.clear r.r_buf;
        r.r_skipping <- true;
        read_line r
      end
      else begin
        if r.r_skipping then Buffer.clear r.r_buf;
        match Unix.read r.r_fd r.r_chunk 0 (Bytes.length r.r_chunk) with
        | 0 -> `Eof
        | n ->
            Buffer.add_subbytes r.r_buf r.r_chunk 0 n;
            read_line r
        | exception Unix.Unix_error ((ECONNRESET | EBADF | EPIPE), _, _) ->
            `Eof
      end

(* --- request handling ------------------------------------------------- *)

let convert_exn = function
  | Env.Rejected msg ->
      Some
        (Diag.v Diag.Layout ~code:"layout.rejected"
           ~hint:
             "every topology alternative failed a design-rule check; relax \
              the parameters or add a fallback variant"
           msg)
  | Inject.Fault (site, hit) -> Some (Inject.to_diag site hit)
  | Sys_error msg -> Some (Diag.v Diag.Cli ~code:"cli.io-error" msg)
  | Failure msg -> Some (Diag.v Diag.Cli ~code:"cli.error" msg)
  | e ->
      Some
        (Diag.v Diag.Internal ~code:"internal.uncaught"
           ~hint:"this is a bug in amgend; please report it"
           (Printexc.to_string e))

let reject ?id ~code msg =
  Wire.response ?id
    ~diagnostics:[ Diag.v Diag.Cli ~code msg ]
    Wire.status_reject

(* Canonical signature of a build: tenant stamp, entity, sorted params.
   Every token is length-prefixed, so the encoding is injective even for
   keys or string values containing separator bytes; the float image is
   hexadecimal, so equal floats always collide and distinct floats never
   do. *)
let signature env entity params =
  let b = Buffer.create 64 in
  let token s =
    Buffer.add_string b (string_of_int (String.length s));
    Buffer.add_char b ':';
    Buffer.add_string b s
  in
  Buffer.add_string b (string_of_int (Env.stamp env));
  Buffer.add_char b '/';
  token entity;
  List.iter
    (fun (k, p) ->
      token k;
      token
        (match p with
        | Wire.Pnum f -> Printf.sprintf "n%h" f
        | Wire.Pstr s -> "s" ^ s))
    (List.sort (fun (a, _) (b, _) -> String.compare a b) params);
  Buffer.contents b

(* Per-tenant environments are LRU-bounded like the memo: an unauthenticated
   stream of fresh tenant names must not grow the daemon without limit.  An
   evicted tenant that returns simply gets a fresh [Env] (new stamp, cold
   cache scope); its orphaned memo entries age out of the memo LRU. *)
let tenant_env t = function
  | None -> t.env_default
  | Some name -> (
      t.tenant_tick <- t.tenant_tick + 1;
      match Hashtbl.find_opt t.tenants name with
      | Some (env, tick) ->
          tick := t.tenant_tick;
          env
      | None ->
          if Hashtbl.length t.tenants >= max 1 t.cfg.tenant_limit then begin
            let victim =
              Hashtbl.fold
                (fun k (_, tick) acc ->
                  match acc with
                  | Some (_, best) when best <= !tick -> acc
                  | _ -> Some (k, !tick))
                t.tenants None
            in
            match victim with
            | Some (k, _) ->
                Hashtbl.remove t.tenants k;
                Obs.count "serve.tenant.evictions" 1;
                Metrics.incr (Metrics.counter "serve.tenant.evictions")
            | None -> ()
          end;
          let env = Env.create (Env.tech t.env_default) in
          Hashtbl.add t.tenants name (env, ref t.tenant_tick);
          Atomic.set t.tenant_count (Hashtbl.length t.tenants);
          env)

(* Canonical build of (entity, params) under [env], memoized.  Returns
   the layout, the replay record, the diagnostics the build reported and
   whether the memo served it.  Only strict, fault-free requests may use
   the memo: a permissive or fault-injected build can differ from the
   canonical one.  Failed builds are not memoized (the diagnostic is
   rebuilt per request). *)
let canonical_build t env ~memoizable entity params =
  let sg = signature env entity params in
  match if memoizable then Hashtbl.find_opt t.memo sg else None with
  | Some e ->
      t.memo_tick <- t.memo_tick + 1;
      e.m_tick <- t.memo_tick;
      Obs.count "serve.memo.hits" 1;
      Metrics.incr (Metrics.counter "serve.memo.hits");
      (* Replay the canonical build's diagnostics so a memo-served
         response carries the same report as the cold one. *)
      List.iter Policy.report e.m_diags;
      (e.m_obj, e.m_recorded, true)
  | None ->
      Obs.count "serve.memo.misses" 1;
      Metrics.incr (Metrics.counter "serve.memo.misses");
      let args =
        List.map
          (fun (k, p) ->
            ( k,
              match p with
              | Wire.Pnum f -> Amg_lang.Value.Num f
              | Wire.Pstr s -> Amg_lang.Value.Str s ))
          params
      in
      let obj, recorded =
        Amg_lang.Interp.build_recorded env t.program entity args
      in
      let build_diags = Policy.drain () in
      List.iter Policy.report build_diags;
      if memoizable then begin
        t.memo_tick <- t.memo_tick + 1;
        if Hashtbl.length t.memo >= max 1 t.cfg.memo_limit then begin
          (* Evict the least recently used signature. *)
          let victim =
            Hashtbl.fold
              (fun k e acc ->
                match acc with
                | Some (_, tick) when tick <= e.m_tick -> acc
                | _ -> Some (k, e.m_tick))
              t.memo None
          in
          match victim with
          | Some (k, _) ->
              (match Hashtbl.find_opt t.memo k with
              | Some victim_e ->
                  ignore
                    (Atomic.fetch_and_add t.best_count
                       (-List.length victim_e.m_best))
              | None -> ());
              Hashtbl.remove t.memo k;
              Obs.count "serve.memo.evictions" 1;
              Metrics.incr (Metrics.counter "serve.memo.evictions")
          | None -> ()
        end;
        Hashtbl.add t.memo sg
          {
            m_obj = obj;
            m_recorded = recorded;
            m_diags = build_diags;
            m_best = [];
            m_tick = t.memo_tick;
          };
        Atomic.set t.memo_count (Hashtbl.length t.memo)
      end;
      (obj, recorded, false)

(* The optimizer replays compacts only; ports are re-derived on the
   winning layout the same way PORT() derives them — as the hull of the
   port's net/layer shapes (mirrors the CLI). *)
let transplant_ports ~from obj =
  List.iter
    (fun (p : Amg_layout.Port.t) ->
      let shapes =
        List.filter
          (fun (s : Amg_layout.Shape.t) -> Amg_layout.Shape.on_layer s p.layer)
          (Lobj.shapes_on_net obj p.net)
      in
      match
        Amg_geometry.Rect.hull_list
          (List.map (fun (s : Amg_layout.Shape.t) -> s.rect) shapes)
      with
      | Some rect ->
          ignore (Lobj.add_port obj ~name:p.name ~net:p.net ~layer:p.layer ~rect)
      | None ->
          Policy.report
            (Diag.v ~severity:Diag.Warning Diag.Optimize
               ~code:"optimize.port-dropped"
               (Fmt.str
                  "port %s: no shapes of net %s on layer %s in the optimized \
                   layout"
                  p.name p.net p.layer)))
    (Lobj.ports from)

(* What a request did, for the latency histograms and the access log.
   [ro_outcome] is the cache-outcome label: memo-hit (either memo layer
   answered), search-warm (the search resumed from prefix-cache entries),
   cold (neither helped), degraded, error or — set by the caller, not
   here — overloaded. *)
type req_obs = {
  ro_outcome : string;
  ro_evals : int;
  ro_hits : int;
  ro_misses : int;
}

let quiet_obs = { ro_outcome = "none"; ro_evals = 0; ro_hits = 0; ro_misses = 0 }

(* Search-effort counters the optimizer records per mode; their delta
   over a request is the access log's [evals] field.  Zero when Obs is
   off (the daemon arms it whenever traces or the access log are on). *)
let eval_counter_names =
  [
    "optimize.orders_ok";
    "optimize.orders_rejected";
    "optimize.bb_nodes";
    "optimize.local_evals";
  ]

let evals_now () =
  List.fold_left (fun acc n -> acc + Obs.counter n) 0 eval_counter_names

(* Run one build request.  Called from the serialized section only. *)
let handle_build t (req : Wire.request) ~queue_depth =
  let started = Unix.gettimeofday () in
  let cache_before = Prefix_cache.stats (Prefix_cache.default ()) in
  let evals_before = evals_now () in
  (* True when the response was served whole from a memo layer: a best
     result hit, or a canonical memo hit with no search to run. *)
  let served_from_memo = ref false in
  Policy.reset ();
  Policy.set_mode (if req.permissive then Policy.Permissive else Policy.Strict);
  let armed =
    match req.inject with
    | None ->
        Inject.disarm ();
        Ok ()
    | Some spec -> (
        match Inject.parse_spec spec with
        | Ok sched ->
            Inject.arm sched;
            Ok ()
        | Error msg -> Error msg)
  in
  match armed with
  | Error msg ->
      Policy.reset ();
      ( reject ?id:req.id ~code:"serve.bad-inject"
          (Printf.sprintf "bad inject spec: %s" msg),
        { quiet_obs with ro_outcome = "error" } )
  | Ok () ->
      let budget =
        match (req.max_time, req.max_evals) with
        | None, None -> None
        | max_time, max_evals ->
            (* Budget deadlines are relative: seconds from now. *)
            Some (Budget.create ?deadline:max_time ?max_evals ())
      in
      let env = tenant_env t req.tenant in
      let memoizable = (not req.permissive) && req.inject = None in
      let sg = signature env req.entity req.params in
      (* Durable-store key: like the memo signature but restart-stable —
         tech fingerprint instead of the process-local Env.stamp, and no
         tenant (stored results are pure functions of tech/entity/params,
         so all tenants share them).  Only strict fault-free requests may
         consult or feed the store, mirroring the memo gate. *)
      let store_handle =
        match (t.result_store, req.optimize) with
        | Some st, Some _ when memoizable ->
            Some
              ( st,
                Store.signature ~tech:t.tech_fp ~entity:req.entity
                  ~params:
                    (List.map
                       (fun (k, p) ->
                         ( k,
                           match p with
                           | Wire.Pnum f -> Store.Num f
                           | Wire.Pstr s -> Store.Str s ))
                       req.params) )
        | _ -> None
      in
      let store_hits_before =
        match t.result_store with
        | Some st -> (Store.stats st).Store.hits
        | None -> 0
      in
      (* Finished optimized results are deterministic for strict,
         fault-free, unbudgeted requests, so they are memoized whole next
         to the canonical build: a repeated identical request skips the
         search and replays the stored report byte-for-byte.  Budgeted
         requests bypass this memo — their result depends on the budget —
         and resume from the resident prefix cache instead. *)
      let best_hit =
        match (req.optimize, budget) with
        | Some opt, None when memoizable -> (
            match Hashtbl.find_opt t.memo sg with
            | Some e -> (
                match List.assoc_opt opt e.m_best with
                | Some _ as hit ->
                    t.memo_tick <- t.memo_tick + 1;
                    e.m_tick <- t.memo_tick;
                    Obs.count "serve.memo.best-hits" 1;
                    Metrics.incr (Metrics.counter "serve.memo.best_hits");
                    hit
                | None -> None)
            | None -> None)
        | _ -> None
      in
      let result, reported, degraded =
        match best_hit with
        | Some (obj, diags) ->
            served_from_memo := true;
            Inject.disarm ();
            Policy.reset ();
            (Ok obj, diags, false)
        | None ->
      let result =
        Diag.guard ~convert:convert_exn (fun () ->
            let obj, recorded, from_memo =
              canonical_build t env ~memoizable req.entity req.params
            in
            if from_memo && req.optimize = None then served_from_memo := true;
            match req.optimize with
            | None -> obj
            | Some opt -> (
                match recorded with
                | Error why ->
                    Policy.report
                      (Diag.v ~severity:Diag.Warning Diag.Optimize
                         ~code:"optimize.not-replayable"
                         ~hint:
                           "the entity must perform at least two top-level \
                            compacts and draw no shapes between or after them"
                         (Fmt.str
                            "%s: cannot reorder compacts (%s); emitting the \
                             canonical build"
                            req.entity why));
                    obj
                | Ok { Amg_lang.Interp.base; steps } ->
                    (* The record is frozen together with its base, so the
                       searches may share cached prefixes across requests
                       under the tenant's stable scope. *)
                    let scope =
                      if memoizable then Some (Optimize.env_scope env)
                      else None
                    in
                    let domains =
                      match req.jobs with
                      | Some j -> Some j
                      | None -> t.cfg.default_jobs
                    in
                    let best, _rating, order =
                      match opt with
                      | Wire.Orders ->
                          Optimize.optimize env ~name:req.entity ~base
                            ?domains ?budget ?scope ?store:store_handle steps
                      | Wire.Bb ->
                          let o, r, ord, _nodes =
                            Optimize.optimize_bb env ~name:req.entity ~base
                              ?domains ?budget ?scope ?store:store_handle steps
                          in
                          (o, r, ord)
                      | Wire.Local ->
                          let o, r, ord, _evals =
                            Optimize.optimize_local env ~name:req.entity ~base
                              ?domains ?budget ?scope ?store:store_handle steps
                          in
                          (o, r, ord)
                    in
                    let canonical_won =
                      List.length order = List.length steps
                      && List.for_all2 ( == ) order steps
                    in
                    if canonical_won then obj
                    else begin
                      transplant_ports ~from:obj best;
                      best
                    end))
      in
      Inject.disarm ();
      let degraded =
        match budget with Some b -> Budget.degraded b | None -> false
      in
      if degraded then begin
        Obs.count "serve.degraded" 1;
        Policy.report
          (Diag.v ~severity:Diag.Warning Diag.Optimize
             ~code:"optimize.degraded"
             ~hint:
               "raise max_time/max_evals to search further; the emitted \
                layout is valid but possibly not the optimum"
             (Fmt.str "%s: search stopped by the budget after %s" req.entity
                (match budget with
                | Some b -> Fmt.str "%d evaluations" (Budget.spent b)
                | None -> "?")))
      end;
      let reported = Policy.drain () in
      Policy.reset ();
      (match (result, req.optimize, budget) with
      | Ok obj, Some opt, None
        when memoizable && (not degraded)
             && not
                  (List.exists
                     (fun d -> d.Diag.severity = Diag.Error)
                     reported) -> (
          match Hashtbl.find_opt t.memo sg with
          | Some e when not (List.mem_assoc opt e.m_best) ->
              e.m_best <- (opt, (obj, reported)) :: e.m_best;
              ignore (Atomic.fetch_and_add t.best_count 1)
          | _ -> ())
      | _ -> ());
      (result, reported, degraded)
      in
      let resp =
        match result with
        | Error d ->
            Wire.response ?id:req.id
              ~diagnostics:(reported @ [ d ])
              Wire.status_diag
        | Ok obj ->
            let has_error =
              List.exists (fun d -> d.Diag.severity = Diag.Error) reported
            in
            let status =
              if has_error then Wire.status_diag
              else if degraded then Wire.status_degraded
              else Wire.status_ok
            in
            let tech = Env.tech env in
            let payload =
              match req.format with
              | Wire.No_payload -> None
              | Wire.Cif -> Some (Amg_layout.Cif.of_lobj ~tech obj)
              | Wire.Svg -> Some (Amg_layout.Svg.of_lobj ~tech obj)
            in
            let rating = Rating.rate env Rating.default obj in
            Wire.response ?id:req.id ~rating ~format:req.format ?payload
              ~diagnostics:reported status
      in
      let cache_after = Prefix_cache.stats (Prefix_cache.default ()) in
      let ro_hits =
        cache_after.Prefix_cache.hits - cache_before.Prefix_cache.hits
      in
      let ro_misses =
        cache_after.Prefix_cache.misses - cache_before.Prefix_cache.misses
      in
      let stats =
        if req.stats then
          Some
            {
              Wire.elapsed_ms = (Unix.gettimeofday () -. started) *. 1000.;
              queue_depth;
              cache_hits = ro_hits;
              cache_misses = ro_misses;
            }
        else None
      in
      let store_hits =
        match t.result_store with
        | Some st -> (Store.stats st).Store.hits - store_hits_before
        | None -> 0
      in
      (* A store hit replays one order through the prefix cache, so it
         usually also scores prefix-cache hits; rank it above search-warm
         to keep the label specific. *)
      let outcome =
        if resp.Wire.status = Wire.status_diag then "error"
        else if resp.Wire.status = Wire.status_degraded then "degraded"
        else if !served_from_memo then "memo-hit"
        else if store_hits > 0 then "store-hit"
        else if ro_hits > 0 then "search-warm"
        else "cold"
      in
      ( { resp with Wire.stats = stats },
        {
          ro_outcome = outcome;
          ro_evals = evals_now () - evals_before;
          ro_hits;
          ro_misses;
        } )

(* Run one sweep request: expand the spec into a bounded grid, run it
   under the same tenant environment / prefix cache / result store as
   build requests, stream one {!Wire.encode_sweep_row} event line per
   output line over the connection as the canonical prefix completes,
   and finish with an ordinary response whose payload summarizes the
   run.  Called from the serialized section only, so the streamed rows
   can never interleave with another request's response line. *)
let handle_sweep t conn (req : Wire.request) ~queue_depth =
  let started = Unix.gettimeofday () in
  let cache_before = Prefix_cache.stats (Prefix_cache.default ()) in
  let evals_before = evals_now () in
  Policy.reset ();
  Policy.set_mode (if req.permissive then Policy.Permissive else Policy.Strict);
  let error_resp d reported =
    Policy.reset ();
    ( Wire.response ?id:req.id ~diagnostics:(reported @ [ d ]) Wire.status_diag,
      { quiet_obs with ro_outcome = "error" } )
  in
  match req.spec with
  | None ->
      Policy.reset ();
      ( reject ?id:req.id ~code:"serve.bad-request" "sweep request carries no spec",
        { quiet_obs with ro_outcome = "error" } )
  | Some spec_src -> (
      match
        Diag.guard ~convert:convert_exn (fun () -> Sweep.parse_spec spec_src)
      with
      | Error d -> error_resp d (Policy.drain ())
      | Ok spec ->
          let gs = Sweep.grid_size spec in
          if gs > t.cfg.sweep_limit then begin
            Policy.reset ();
            ( reject ?id:req.id ~code:"serve.sweep-too-large"
                (Printf.sprintf "grid expands to %d instances (limit %d)" gs
                   t.cfg.sweep_limit),
              { quiet_obs with ro_outcome = "error" } )
          end
          else begin
            let env = tenant_env t req.tenant in
            let domains =
              match req.jobs with
              | Some j -> j
              | None -> (
                  match t.cfg.default_jobs with
                  | Some j -> j
                  | None -> Pool.default_domains ())
            in
            (* Stream rows as raw event lines ahead of the response.  A
               peer that vanished mid-sweep stops the writes (the sweep
               itself runs to completion — its rows also feed the store)
               and the final send surfaces the close as EPIPE upstream. *)
            let index = ref 0 in
            let alive = ref true in
            let on_line line =
              if !alive then begin
                try
                  write_all conn.c_fd (Wire.encode_sweep_row ~index:!index line ^ "\n")
                with Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) ->
                  alive := false
              end;
              incr index
            in
            let result =
              Diag.guard ~convert:convert_exn (fun () ->
                  Sweep.run ~domains ?store:t.result_store
                    ?source_file:t.cfg.source_file ~on_line ~env
                    ~source:t.cfg.source spec)
            in
            let reported = Policy.drain () in
            Policy.reset ();
            let cache_after = Prefix_cache.stats (Prefix_cache.default ()) in
            let ro_hits =
              cache_after.Prefix_cache.hits - cache_before.Prefix_cache.hits
            in
            let ro_misses =
              cache_after.Prefix_cache.misses - cache_before.Prefix_cache.misses
            in
            match result with
            | Error d ->
                ( Wire.response ?id:req.id
                    ~diagnostics:(reported @ [ d ])
                    Wire.status_diag,
                  {
                    ro_outcome = "error";
                    ro_evals = evals_now () - evals_before;
                    ro_hits;
                    ro_misses;
                  } )
            | Ok r ->
                let status =
                  if r.Sweep.failures > 0 then Wire.status_degraded
                  else Wire.status_ok
                in
                let payload =
                  J.to_string
                    (J.Jobj
                       [
                         ("rows", J.Jnum (float_of_int r.Sweep.rows));
                         ("failures", J.Jnum (float_of_int r.Sweep.failures));
                         ( "duplicates",
                           J.Jnum (float_of_int r.Sweep.duplicates) );
                         ( "store_hits",
                           J.Jnum (float_of_int r.Sweep.store_hits) );
                       ])
                in
                let resp =
                  Wire.response ?id:req.id ~payload ~diagnostics:reported
                    status
                in
                let stats =
                  if req.stats then
                    Some
                      {
                        Wire.elapsed_ms =
                          (Unix.gettimeofday () -. started) *. 1000.;
                        queue_depth;
                        cache_hits = ro_hits;
                        cache_misses = ro_misses;
                      }
                  else None
                in
                let outcome =
                  if r.Sweep.failures > 0 then "degraded"
                  else if r.Sweep.store_hits > 0 then "store-hit"
                  else if ro_hits > 0 then "search-warm"
                  else "cold"
                in
                ( { resp with Wire.stats = stats },
                  {
                    ro_outcome = outcome;
                    ro_evals = evals_now () - evals_before;
                    ro_hits;
                    ro_misses;
                  } )
          end)

(* --- telemetry: scrape payloads, access log, request traces ----------- *)

let op_name = function
  | Wire.Build -> "build"
  | Wire.Sweep -> "sweep"
  | Wire.Ping -> "ping"
  | Wire.Stop -> "stop"
  | Wire.Metrics -> "metrics"
  | Wire.Health -> "health"

(* JSON form of the registry snapshot, on the Wire discipline: fixed
   field order, optional fields omitted, shortest round-trip floats
   ({!Diag.Json}).  Equal snapshots encode to equal bytes. *)
let metrics_json () =
  let value_fields = function
    | Metrics.Counter n ->
        [ ("type", J.Jstr "counter"); ("value", J.Jnum (float_of_int n)) ]
    | Metrics.Gauge v -> [ ("type", J.Jstr "gauge"); ("value", J.Jnum v) ]
    | Metrics.Histogram h ->
        let nums conv arr =
          J.Jarr (Array.to_list (Array.map (fun x -> J.Jnum (conv x)) arr))
        in
        [
          ("type", J.Jstr "histogram");
          ("count", J.Jnum (float_of_int h.Metrics.h_count));
          ("sum", J.Jnum h.Metrics.h_sum);
          ("p50", J.Jnum (Metrics.quantile h 0.5));
          ("p90", J.Jnum (Metrics.quantile h 0.9));
          ("p99", J.Jnum (Metrics.quantile h 0.99));
          ("bounds", nums Fun.id h.Metrics.h_bounds);
          (* one count per bound plus the trailing overflow slot *)
          ("counts", nums float_of_int h.Metrics.h_counts);
        ]
  in
  let sample (s : Metrics.sample) =
    J.Jobj
      (("name", J.Jstr s.Metrics.m_name)
       ::
       (if s.Metrics.m_labels = [] then []
        else
          [
            ( "labels",
              J.Jobj
                (List.map (fun (k, v) -> (k, J.Jstr v)) s.Metrics.m_labels) );
          ])
      @ value_fields s.Metrics.m_value)
  in
  J.to_string (J.Jobj [ ("metrics", J.Jarr (List.map sample (Metrics.snapshot ()))) ])

let health_payload t =
  let inflight, depth = sched_counts t.sched in
  J.to_string
    (J.Jobj
       [
         ( "status",
           J.Jstr (if Atomic.get t.stopping then "stopping" else "ok") );
         ("uptime_s", J.Jnum (Unix.gettimeofday () -. t.started_at));
         ("served", J.Jnum (float_of_int (Atomic.get t.served_count)));
         ("in_flight", J.Jnum (float_of_int inflight));
         ("queue_depth", J.Jnum (float_of_int depth));
         ("tenants", J.Jnum (float_of_int (Atomic.get t.tenant_count)));
         ("memo_entries", J.Jnum (float_of_int (Atomic.get t.memo_count)));
         ("pool_size", J.Jnum (float_of_int (pool_size t)));
         ("pool_parked", J.Jnum (float_of_int (Pool.parked_count ())));
       ])

(* One ndjson line per finished request.  High-cardinality detail
   (request id, tenant, entity) lives here, never in metric labels. *)
let access_line t ~rid ~(req : Wire.request) ~status ~lat_ms ~queue_ms
    ~(ro : req_obs) =
  match t.access with
  | None -> ()
  | Some (lock, ocr) ->
      let line =
        J.to_string
          (J.Jobj
             (List.filter_map Fun.id
                [
                  Some ("ts", J.Jnum (Unix.gettimeofday ()));
                  Some ("request_id", J.Jstr rid);
                  Option.map (fun s -> ("id", J.Jstr s)) req.id;
                  Some
                    ( "tenant",
                      match req.tenant with
                      | Some s -> J.Jstr s
                      | None -> J.Jnull );
                  Some ("op", J.Jstr (op_name req.op));
                  (if req.entity <> "" then
                     Some ("entity", J.Jstr req.entity)
                   else None);
                  Some ("status", J.Jnum (float_of_int status));
                  Some ("outcome", J.Jstr ro.ro_outcome);
                  Some ("latency_ms", J.Jnum lat_ms);
                  Some ("queue_ms", J.Jnum queue_ms);
                  Some ("evals", J.Jnum (float_of_int ro.ro_evals));
                  Some ("cache_hits", J.Jnum (float_of_int ro.ro_hits));
                  Some ("cache_misses", J.Jnum (float_of_int ro.ro_misses));
                ]))
      in
      Mutex.lock lock;
      (try
         let oc = !ocr in
         output_string oc line;
         output_char oc '\n';
         flush oc
       with Sys_error _ -> ());
      Mutex.unlock lock

(* Export one request's Obs window as a Chrome trace when the request is
   sampled (every [trace_sample]-th) or slower than [slow_ms].  Called
   inside the serialized section, before the next request can touch the
   strand. *)
let export_request_trace t ~rid ~rid_n ~(req : Wire.request) ~lat_ms window =
  match t.cfg.trace_dir with
  | None -> ()
  | Some dir ->
      let sampled =
        t.cfg.trace_sample > 0 && rid_n mod t.cfg.trace_sample = 0
      in
      let slow =
        match t.cfg.slow_ms with Some ms -> lat_ms >= ms | None -> false
      in
      if sampled || slow then begin
        match Obs.window_events window with
        | [] -> ()
        | evs ->
            let metadata =
              List.filter_map Fun.id
                [
                  Some ("request_id", rid);
                  Some ("op", op_name req.op);
                  (if req.entity <> "" then Some ("entity", req.entity)
                   else None);
                  Option.map (fun s -> ("tenant", s)) req.tenant;
                  (if slow then Some ("slow", "true") else None);
                ]
            in
            let path = Filename.concat dir (rid ^ ".json") in
            (try Trace.write_events ~metadata path evs with Sys_error _ -> ())
      end

(* Callback-backed gauges over the daemon's live state.  Callbacks only
   read atomics or short-lock counters, so a scrape never waits on
   compute. *)
let register_metrics t =
  let g name f = Metrics.gauge_fn name f in
  g "serve.uptime_seconds" (fun () -> Unix.gettimeofday () -. t.started_at);
  g "serve.in_flight" (fun () -> float_of_int (fst (sched_counts t.sched)));
  g "serve.queue_depth" (fun () -> float_of_int (snd (sched_counts t.sched)));
  g "serve.tenants" (fun () -> float_of_int (Atomic.get t.tenant_count));
  g "serve.memo.entries" (fun () -> float_of_int (Atomic.get t.memo_count));
  g "serve.memo.best_entries" (fun () ->
      float_of_int (Atomic.get t.best_count));
  g "serve.pool.size" (fun () -> float_of_int (pool_size t));
  g "serve.pool.parked" (fun () -> float_of_int (Pool.parked_count ()));
  Metrics.counter_fn "serve.pool.steals" Pool.steals;
  Metrics.counter_fn "serve.obs_events_dropped" Obs.dropped_events;
  Prefix_cache.register_metrics ()

(* --- connection loop -------------------------------------------------- *)

let set_busy t conn busy =
  Mutex.lock t.conns_lock;
  conn.c_busy <- busy;
  let stopping = Atomic.get t.stopping in
  Mutex.unlock t.conns_lock;
  stopping

(* Every request gets a stable id from a process-wide sequence; the
   scrape ops (metrics/health) answer directly from the connection
   thread, never entering the compute queue, so they stay responsive
   while a build runs. *)
let handle_request t conn (req : Wire.request) =
  let rid_n = Atomic.fetch_and_add t.req_seq 1 in
  let rid = Printf.sprintf "r%06d" rid_n in
  let arrived = Unix.gettimeofday () in
  let finish ?(queue_ms = 0.) ?(ro = quiet_obs) resp =
    let lat_ms = (Unix.gettimeofday () -. arrived) *. 1000. in
    let labels =
      [
        ("cache", ro.ro_outcome);
        ("op", op_name req.op);
        ("status", string_of_int resp.Wire.status);
      ]
    in
    Metrics.incr (Metrics.counter ~labels "serve.requests");
    Metrics.observe (Metrics.histogram ~labels "serve.latency")
      (lat_ms /. 1000.);
    access_line t ~rid ~req ~status:resp.Wire.status ~lat_ms ~queue_ms ~ro;
    Atomic.incr t.served_count;
    send_response conn resp
  in
  (* Compute ops (build, sweep) share the admission path: the stopping
     gate, the bounded FIFO queue, the Obs window/span bracket and the
     trace export all behave identically — only the handler differs. *)
  let serialized handler =
    if Atomic.get t.stopping then
      finish
        (reject ?id:req.id ~code:"serve.stopping" "daemon is shutting down")
    else
      match sched_admit t.sched with
      | None ->
          finish
            ~ro:{ quiet_obs with ro_outcome = "overloaded" }
            (reject ?id:req.id ~code:"serve.overloaded"
               (Printf.sprintf "admission queue full (limit %d)"
                  t.sched.s_limit))
      | Some queue_depth ->
          let queue_ms = (Unix.gettimeofday () -. arrived) *. 1000. in
          Fun.protect
            ~finally:(fun () -> sched_release t.sched)
            (fun () ->
              (* The window is taken before the request span opens so
                 the span's End lands inside it; every connection
                 thread shares domain 0's root strand, and only the
                 serialized request can be recording, so the window is
                 exactly this request's slice. *)
              let window = Obs.window () in
              let resp, ro =
                Obs.span "serve.request" @@ fun () ->
                Obs.sample "serve.queue_depth" (float_of_int queue_depth);
                handler ~queue_depth
              in
              let lat_ms = (Unix.gettimeofday () -. arrived) *. 1000. in
              export_request_trace t ~rid ~rid_n ~req ~lat_ms window;
              finish ~queue_ms ~ro resp)
  in
  match req.op with
  | Wire.Ping -> finish (Wire.response ?id:req.id Wire.status_ok)
  | Wire.Stop ->
      request_stop t;
      finish (Wire.response ?id:req.id Wire.status_ok)
  | Wire.Metrics ->
      let payload =
        if req.json then metrics_json () else Metrics.to_prometheus ()
      in
      finish (Wire.response ?id:req.id ~payload Wire.status_ok)
  | Wire.Health ->
      finish (Wire.response ?id:req.id ~payload:(health_payload t) Wire.status_ok)
  | Wire.Build -> serialized (fun ~queue_depth -> handle_build t req ~queue_depth)
  | Wire.Sweep ->
      serialized (fun ~queue_depth -> handle_sweep t conn req ~queue_depth)

let connection_loop t conn =
  let r = reader conn.c_fd t.cfg.max_frame in
  let rec loop () =
    if not (set_busy t conn false) then
      match read_line r with
      | `Eof -> ()
      | `Oversized ->
          let stopping = set_busy t conn true in
          if not stopping then begin
            send_response conn
              (reject ~code:"serve.frame-too-large"
                 (Printf.sprintf "request line exceeds %d bytes" r.r_max));
            loop ()
          end
      | `Line line ->
          let stopping = set_busy t conn true in
          if not stopping then begin
            (match Wire.decode_request line with
            | Error msg ->
                send_response conn
                  (reject ~code:"serve.bad-request"
                     (Printf.sprintf "malformed request: %s" msg))
            | Ok req -> handle_request t conn req);
            loop ()
          end
  in
  (try loop () with _ -> ());
  (try Unix.close conn.c_fd with Unix.Unix_error _ -> ());
  Mutex.lock t.conns_lock;
  t.conns <- List.filter (fun c -> c != conn) t.conns;
  Mutex.unlock t.conns_lock

let accept_loop t listener =
  let rec loop () =
    match Unix.select [ listener; t.wake_r ] [] [] (-1.) with
    | ready, _, _ when List.mem t.wake_r ready -> ()
    | ready, _, _ when not (List.mem listener ready) -> loop ()
    | _ -> (
        match Unix.accept listener with
        | fd, _ ->
            if Atomic.get t.stopping then begin
              (try Unix.close fd with Unix.Unix_error _ -> ());
              loop ()
            end
            else begin
              let conn = { c_fd = fd; c_busy = false; c_thread = None } in
              Mutex.lock t.conns_lock;
              t.conns <- conn :: t.conns;
              Mutex.unlock t.conns_lock;
              conn.c_thread <- Some (Thread.create (connection_loop t) conn);
              loop ()
            end
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
            loop ()
        | exception Unix.Unix_error ((EBADF | EINVAL | ECONNABORTED), _, _) ->
            ()
        | exception _ -> loop ())
    | exception Unix.Unix_error (EINTR, _, _) -> loop ()
    | exception Unix.Unix_error ((EBADF | EINVAL), _, _) -> ()
  in
  loop ()

(* --- lifecycle -------------------------------------------------------- *)

let listen_unix path =
  (match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
  | _ -> ()
  | exception Unix.Unix_error (ENOENT, _, _) -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let listen_tcp host port =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } -> Unix.inet_addr_loopback
      | h -> h.Unix.h_addr_list.(0))
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (addr, port));
  Unix.listen fd 64;
  fd

let start cfg =
  (* A peer that disconnects before its response is written must surface
     as EPIPE on the write (handled per connection), not as a SIGPIPE
     whose default action kills the whole daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let program =
    Amg_lang.Parser.parse_program ?file:cfg.source_file cfg.source
  in
  let env_default =
    match cfg.tech with None -> Env.bicmos () | Some tech -> Env.create tech
  in
  if cfg.warm_pool then Pool.warm ?domains:cfg.default_jobs ();
  (* Per-request traces and the access log's evals field read the Obs
     stream; arm it if the caller has not, and bound event retention so
     a long-running daemon cannot accumulate without limit (counters and
     samples stay exact — only span/mark events are capped). *)
  let obs_owned =
    (cfg.trace_dir <> None || cfg.access_log <> None) && not (Obs.enabled ())
  in
  if obs_owned then Obs.enable ();
  Obs.set_max_events (Some 65536);
  (match cfg.trace_dir with
  | None -> ()
  | Some dir -> (
      try Unix.mkdir dir 0o755 with
      | Unix.Unix_error (EEXIST, _, _) -> ()));
  let access =
    match cfg.access_log with
    | None -> None
    | Some path ->
        Some
          ( Mutex.create (),
            ref (open_out_gen [ Open_append; Open_creat ] 0o644 path) )
  in
  (* Load the durable store before the listeners open, so a warm restart
     can answer its very first request from disk.  Recovery diagnostics
     (corrupt interior records, partial reads) go to stderr — there is no
     request to attach them to. *)
  let result_store =
    match cfg.store with
    | None -> None
    | Some path ->
        let st, diags = Store.open_ path in
        List.iter (fun d -> Fmt.epr "%a@." Diag.pp d) diags;
        Store.register_metrics st;
        Some st
  in
  let tech_fp =
    Store.tech_fingerprint (Amg_tech.Tech_file.to_string (Env.tech env_default))
  in
  let unix_fd = listen_unix cfg.socket_path in
  let tcp_fd =
    match cfg.tcp with
    | None -> None
    | Some (host, port) -> (
        try Some (listen_tcp host port)
        with e ->
          (try Unix.close unix_fd with Unix.Unix_error _ -> ());
          (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
          raise e)
  in
  let listeners = unix_fd :: Option.to_list tcp_fd in
  (* Acceptors select on the listener; keep accept itself from blocking
     when a pending connection vanishes between the two calls. *)
  List.iter Unix.set_nonblock listeners;
  let wake_r, wake_w = Unix.pipe () in
  let t =
    {
      cfg;
      program;
      env_default;
      tenants = Hashtbl.create 8;
      memo = Hashtbl.create 64;
      memo_tick = 0;
      tenant_tick = 0;
      sched = sched_create cfg.queue_limit;
      listeners;
      wake_r;
      wake_w;
      acceptors = [];
      conns_lock = Mutex.create ();
      conns = [];
      stopping = Atomic.make false;
      stopped = Atomic.make false;
      served_count = Atomic.make 0;
      started_at = Unix.gettimeofday ();
      req_seq = Atomic.make 0;
      tenant_count = Atomic.make 0;
      memo_count = Atomic.make 0;
      best_count = Atomic.make 0;
      access;
      obs_owned;
      result_store;
      tech_fp;
      checkpoint_req = Atomic.make false;
      reopen_req = Atomic.make false;
    }
  in
  register_metrics t;
  t.acceptors <- List.map (fun fd -> Thread.create (accept_loop t) fd) listeners;
  t

let stop t =
  if not (Atomic.exchange t.stopped true) then begin
    Atomic.set t.stopping true;
    (* Closing the pipe's write end wakes the acceptors out of select;
       then the listeners can be closed so new connects fail. *)
    (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
    List.iter Thread.join t.acceptors;
    t.acceptors <- [];
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      t.listeners;
    (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
    (* Wake idle connections: they are blocked in read; a shutdown makes
       the read return EOF.  Busy connections finish their in-flight
       request, answer it, then observe the stopping flag and exit —
       [set_busy] and this walk run under the same lock, so a connection
       cannot slip back into a blocking read unobserved. *)
    Mutex.lock t.conns_lock;
    let conns = t.conns in
    List.iter
      (fun c ->
        if not c.c_busy then
          try Unix.shutdown c.c_fd Unix.SHUTDOWN_RECEIVE
          with Unix.Unix_error _ -> ())
      conns;
    Mutex.unlock t.conns_lock;
    List.iter
      (fun c -> match c.c_thread with Some th -> Thread.join th | None -> ())
      conns;
    (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ());
    (match t.access with
    | Some (_, ocr) -> ( try close_out !ocr with Sys_error _ -> ())
    | None -> ());
    (* Persist on drain: every request is answered by now, so the table
       is final; compact it into a one-record-per-key snapshot.  Failures
       are contained as store.* warnings — print them, the daemon is the
       last reader of the sink here. *)
    (match t.result_store with
    | Some st ->
        Store.checkpoint st;
        Store.close st;
        List.iter (fun d -> Fmt.epr "%a@." Diag.pp d) (Policy.drain ())
    | None -> ());
    Obs.set_max_events None;
    if t.obs_owned then Obs.disable ()
  end

let checkpoint t =
  match t.result_store with Some st -> Store.checkpoint st | None -> ()

let reopen_access_log t =
  match (t.access, t.cfg.access_log) with
  | Some (lock, ocr), Some path ->
      Mutex.lock lock;
      (try close_out !ocr with Sys_error _ -> ());
      (try ocr := open_out_gen [ Open_append; Open_creat ] 0o644 path
       with Sys_error _ -> ());
      Mutex.unlock lock
  | _ -> ()

(* Signal work happens here, not in the handlers: OCaml signal handlers
   run at safepoints with almost nothing guaranteed about context, so
   they only flip an atomic and the wait loop does the actual I/O. *)
let wait t =
  while not (Atomic.get t.stopping) do
    Thread.delay 0.05;
    if Atomic.exchange t.checkpoint_req false then checkpoint t;
    if Atomic.exchange t.reopen_req false then reopen_access_log t
  done

let run cfg =
  let t = start cfg in
  let on_signal _ = request_stop t in
  let previous =
    List.map
      (fun s -> (s, Sys.signal s (Sys.Signal_handle on_signal)))
      [ Sys.sigterm; Sys.sigint ]
  in
  let previous =
    (try
       (Sys.sigusr1, Sys.signal Sys.sigusr1
          (Sys.Signal_handle (fun _ -> Atomic.set t.checkpoint_req true)))
       :: previous
     with Invalid_argument _ | Sys_error _ -> previous)
  in
  let previous =
    (try
       (Sys.sighup, Sys.signal Sys.sighup
          (Sys.Signal_handle (fun _ -> Atomic.set t.reopen_req true)))
       :: previous
     with Invalid_argument _ | Sys_error _ -> previous)
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun (s, b) -> Sys.set_signal s b) previous)
    (fun () ->
      wait t;
      stop t)
