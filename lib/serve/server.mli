(** The generator service: a long-running daemon serving module builds
    over a Unix-domain socket (and optionally TCP) with the prefix cache
    resident between requests.

    {b Protocol.}  Newline-delimited JSON ({!Amg_robust.Wire}): one
    request per line, one response line per request, answered on the same
    connection in request order.  Malformed or oversized request lines get
    a structured [status = 2] error response and the connection survives;
    a line truncated by EOF is dropped with the connection.

    {b Scheduling.}  Connections are handled by one system thread each
    (blocking I/O); build requests are admitted into a bounded FIFO queue
    and executed one at a time.  Serializing the compute keeps the §7
    determinism contract intact — each search still fans out over the
    domain pool internally via [?jobs] — and makes the process-global
    request state (policy sink, fault-injection schedule, Obs strands)
    safe without sprinkling locks through the engine.

    {b Warm serving.}  The daemon keeps per-tenant environments (distinct
    {!Amg_core.Env.stamp} → distinct prefix-cache scopes) and memoizes
    the recorded canonical build per (tenant, entity, params) signature,
    so repeated requests replay the same frozen step list and hit the
    resident cache across requests.

    {b Shutdown.}  A [stop] request or {!request_stop} (wired to SIGTERM
    by {!run}) drains in-flight requests, wakes idle connections, rejects
    new connects, and leaves the process at exit code 0.

    {b Telemetry.}  Every request updates the {!Amg_obs.Metrics}
    registry: a [serve.requests] counter and a [serve.latency] histogram,
    both labelled by op, response status and cache outcome
    ([memo-hit]/[store-hit]/[search-warm]/[cold]/[degraded]/[error]/[overloaded]),
    plus callback gauges over the queue, the memo layers, the tenant
    table, the domain pool and the prefix cache.  The [metrics] and
    [health] wire ops are answered straight from the connection thread —
    never queued behind compute — so a scrape stays fast under load.
    Optional extras: an ndjson access log ([access_log]), and per-request
    Chrome traces for sampled or slow requests ([trace_dir] /
    [trace_sample] / [slow_ms]); both arm {!Amg_obs.Obs} if the caller
    has not, with event retention capped so a long-running daemon stays
    bounded. *)

type config = {
  socket_path : string;  (** Unix-domain socket path; created at start. *)
  tcp : (string * int) option;  (** Optional TCP listener (host, port). *)
  source : string;  (** Module library source text. *)
  source_file : string option;  (** Name for parse diagnostics. *)
  tech : Amg_tech.Technology.t option;  (** Default: built-in BiCMOS. *)
  default_jobs : int option;  (** Domains when a request names none. *)
  queue_limit : int;  (** Admitted-but-unfinished request cap. *)
  max_frame : int;  (** Request line byte cap. *)
  memo_limit : int;  (** Recorded-build signatures kept (LRU). *)
  tenant_limit : int;  (** Tenant environments kept resident (LRU). *)
  warm_pool : bool;  (** Pre-spawn the domain pool at start. *)
  trace_dir : string option;
      (** Directory for per-request Chrome traces (created if absent). *)
  trace_sample : int;
      (** Export every [N]-th request's trace; [0] disables sampling. *)
  slow_ms : float option;
      (** Also export any request at least this slow (needs
          [trace_dir]). *)
  access_log : string option;  (** ndjson access log path (appended). *)
  store : string option;
      (** Durable result-store path ({!Amg_store.Store}): loaded before
          the listeners open (warm restart), fed by strict fault-free
          optimized builds, checkpointed on SIGUSR1 and on drain. *)
  sweep_limit : int;
      (** Largest parameter grid a [sweep] request may expand to; larger
          specs are rejected with [serve.sweep-too-large] before any
          compute runs. *)
}

val config :
  ?tcp:string * int ->
  ?source:string ->
  ?source_file:string ->
  ?tech:Amg_tech.Technology.t ->
  ?default_jobs:int ->
  ?queue_limit:int ->
  ?max_frame:int ->
  ?memo_limit:int ->
  ?tenant_limit:int ->
  ?warm_pool:bool ->
  ?trace_dir:string ->
  ?trace_sample:int ->
  ?slow_ms:float ->
  ?access_log:string ->
  ?store:string ->
  ?sweep_limit:int ->
  string ->
  config
(** [config socket_path] with defaults: no TCP, the built-in
    {!Amg_lang.Stdlib.all} module library, built-in technology, queue
    limit 64, 1 MiB frames, 128 memo signatures, 64 resident tenant
    environments, no pool warm-up, no traces, no access log, no durable
    store, sweep grids capped at 256 instances. *)

type t

val start : config -> t
(** Parse the module library, bind the listeners and spawn the accept
    thread.  Ignores SIGPIPE process-wide so a peer that vanishes
    mid-response surfaces as a clean connection close instead of killing
    the daemon.  @raise Amg_robust.Diag.Fail on a bad source or tech;
    [Unix.Unix_error] on bind failures (stale socket paths are
    unlinked first). *)

val request_stop : t -> unit
(** Ask the daemon to stop; returns immediately.  Safe from signal
    handlers and from connection threads (the [stop] op calls it). *)

val stop_requested : t -> bool

val stop : t -> unit
(** Graceful shutdown: reject new connects, wake idle connections, let
    in-flight requests finish and answer, join every thread, unlink the
    socket.  Idempotent. *)

val wait : t -> unit
(** Block until {!request_stop} has been called (polling; usable from
    the main thread while signal handlers fire). *)

val checkpoint : t -> unit
(** Compact the durable store (if configured) into a one-record-per-key
    snapshot via write-to-temp + fsync + atomic rename.  No-op without a
    store.  Safe while requests are being served — the store handle is
    internally locked.  {!run} wires this to SIGUSR1. *)

val reopen_access_log : t -> unit
(** Close and reopen the access log at its configured path, for log
    rotation without a restart.  No-op without an access log.  {!run}
    wires this to SIGHUP. *)

val run : config -> unit
(** [start], install the daemon signal contract, then {!wait} and
    {!stop}.  Signals: SIGTERM/SIGINT request a graceful stop (drain,
    persist the store, exit 0); SIGUSR1 {!checkpoint}s the store;
    SIGHUP {!reopen_access_log}s.  The signal handlers only flip atomic
    flags — the actual I/O runs on the waiting main thread.  The CLI
    entry points wrap this. *)

val served : t -> int
(** Requests answered so far (all ops). *)

val socket_path : t -> string
