(** Compaction-order optimization (§2.4).

    The successive compactor's result depends on the order in which objects
    are compacted; optimization mode re-runs the sequence over permutations
    of the order and keeps the result the {!Rating} function likes best.

    Candidate evaluations are independent full-layout rebuilds, so every
    search here fans them out over a {!Amg_parallel.Pool} of OCaml domains.
    [?domains] picks the participant count and defaults to
    {!Amg_parallel.Pool.default_domains} (the machine's recommended domain
    count unless overridden, e.g. by [amgen --jobs]).

    Determinism contract: for a given [Env], steps and seed, every entry
    point returns the identical rating, the identical chosen order and a
    byte-identical layout for {e every} domain count — candidates are
    collected in canonical order and reduced with strict comparisons, so
    scheduling can never change the winner.  Node and evaluation counts are
    equally domain-count-independent. *)

type step = {
  obj : Amg_layout.Lobj.t;
  dir : Amg_geometry.Dir.t;
  ignore_layers : string list;
  align : Amg_compact.Successive.align;
  variable_edges : bool;
}

val step :
  ?ignore_layers:string list ->
  ?align:Amg_compact.Successive.align ->
  ?variable_edges:bool ->
  Amg_layout.Lobj.t ->
  Amg_geometry.Dir.t ->
  step
(** One [compact(obj, dir, …)] call of a module description. *)

val apply : Env.t -> name:string -> step list -> Amg_layout.Lobj.t
(** Run the steps in the given order against a fresh main object; every
    step compacts a fresh copy of its object, so the same steps can be
    replayed in any order. *)

val permutations : 'a list -> 'a list Seq.t
(** All permutations, lazily: forcing the head never materializes the
    tail, so taking a few orders of a long list stays cheap. *)

val evaluate_orders :
  Env.t ->
  name:string ->
  ?rating:Rating.t ->
  ?max_orders:int ->
  ?domains:int ->
  step list ->
  (Amg_layout.Lobj.t * float * step list) list
(** Build and rate every order (up to [max_orders], default 720 = 6!);
    rejected orders are skipped.  The result list is in exploration
    (canonical permutation) order for any [?domains]. *)

val optimize :
  Env.t ->
  name:string ->
  ?rating:Rating.t ->
  ?max_orders:int ->
  ?domains:int ->
  step list ->
  Amg_layout.Lobj.t * float * step list
(** The best order's result, its rating, and the order itself; rating ties
    go to the earliest order in exploration order.
    @raise Env.Rejected when every order is rejected. *)

val optimize_bb :
  Env.t ->
  name:string ->
  ?rating:Rating.t ->
  ?domains:int ->
  step list ->
  Amg_layout.Lobj.t * float * step list * int
(** Branch-and-bound over orders: same optimum as the exhaustive search
    (placing an object never shrinks the bounding box, so the partial area
    is a sound lower bound), usually visiting far fewer nodes.  The search
    decomposes into one sub-search per first step, each seeded with the
    canonical order's rating as initial incumbent, and merges the
    sub-search winners in canonical order — the chosen order, rating and
    node count (the last component) are identical for every [?domains].
    @raise Env.Rejected when every order is rejected. *)

val optimize_local :
  Env.t ->
  name:string ->
  ?rating:Rating.t ->
  ?restarts:int ->
  ?seed:int ->
  ?domains:int ->
  step list ->
  Amg_layout.Lobj.t * float * step list * int
(** Heuristic order search for step counts beyond exhaustive reach:
    steepest-descent hill climbing over pairwise swaps — each round
    evaluates the full swap neighbourhood (in parallel) and accepts the
    best improving candidate, ties to the lowest swap index — with
    [restarts] deterministically shuffled starting orders ([seed] makes
    runs reproducible).  Never worse than the best starting order; not
    guaranteed optimal.  The last component is the number of
    rebuild-and-rate evaluations performed, which is also independent of
    [?domains].
    @raise Env.Rejected when every order is rejected. *)
