(** Compaction-order optimization (§2.4).

    The successive compactor's result depends on the order in which objects
    are compacted; optimization mode re-runs the sequence over permutations
    of the order and keeps the result the {!Rating} function likes best.

    Candidate evaluations are independent full-layout rebuilds, so every
    search here fans them out over a {!Amg_parallel.Pool} of OCaml domains.
    [?domains] picks the participant count and defaults to
    {!Amg_parallel.Pool.default_domains} (the machine's recommended domain
    count unless overridden, e.g. by [amgen --jobs]).

    Determinism contract: for a given [Env], steps and seed, every entry
    point returns the identical rating, the identical chosen order and a
    byte-identical layout for {e every} domain count — candidates are
    collected in canonical order and reduced with strict comparisons, so
    scheduling can never change the winner.  Node and evaluation counts are
    equally domain-count-independent.

    All searches share a {!Prefix_cache}: the layout after a step prefix
    is a pure function of the environment and the prefix, so an evaluation
    resumes from the deepest already-built prefix instead of replaying it.
    [?cache] overrides the process-wide default
    ({!Prefix_cache.default}; pass {!Prefix_cache.disabled} to opt out).
    Sharing never changes results: a hit is a faithful copy of a
    deterministic build, so ratings, chosen orders, layout bytes, node and
    eval counts are all identical with the cache on or off — only wall
    time and the [prefix_cache.*] counters differ. *)

type step = {
  uid : int;  (** canonical identity; the prefix-cache key component *)
  obj : Amg_layout.Lobj.t;
  dir : Amg_geometry.Dir.t;
  ignore_layers : string list;
  align : Amg_compact.Successive.align;
  variable_edges : bool;
}

val step :
  ?ignore_layers:string list ->
  ?align:Amg_compact.Successive.align ->
  ?variable_edges:bool ->
  Amg_layout.Lobj.t ->
  Amg_geometry.Dir.t ->
  step
(** One [compact(obj, dir, …)] call of a module description.  Each call
    allocates a fresh [uid], so building "the same" step twice yields two
    cache-distinct steps; searches over a shared step list share cached
    prefixes, across calls too. *)

val apply :
  ?base:Amg_layout.Lobj.t -> Env.t -> name:string -> step list -> Amg_layout.Lobj.t
(** Run the steps in the given order against a fresh main object; every
    step compacts a fresh copy of its object, so the same steps can be
    replayed in any order.  [?base] starts from a copy of an existing
    object instead of an empty one — used to replay orders recorded from a
    language build whose entity placed shapes before its first compact. *)

val permutations : 'a list -> 'a list Seq.t
(** All permutations, lazily: forcing the head never materializes the
    tail, so taking a few orders of a long list stays cheap. *)

val env_scope : Env.t -> int
(** The prefix-cache scope the searches use for base-free runs: entries
    are keyed under the environment's stamp and shared across calls.
    A search seeded with [?base] normally gets a fresh private scope
    (the layout depends on the base's bytes, which the cache cannot
    check); a caller that replays a {e frozen} (base, steps) record —
    the serving daemon's memoized builds — may pass [~scope:(env_scope
    env)] to the searches to opt back into cross-call sharing.  Sound
    exactly when every step uid is only ever replayed against the same
    base bytes, which holds when base and steps are captured together
    and never mutated. *)

val evaluate_orders :
  Env.t ->
  name:string ->
  ?base:Amg_layout.Lobj.t ->
  ?rating:Rating.t ->
  ?max_orders:int ->
  ?domains:int ->
  ?budget:Amg_robust.Budget.t ->
  ?cache:Prefix_cache.t ->
  ?scope:int ->
  step list ->
  (Amg_layout.Lobj.t * float * step list) list
(** Build and rate every order (up to [max_orders], default 720 = 6!);
    rejected orders are skipped.  The result list is in exploration
    (canonical permutation) order for any [?domains].

    [?budget] bounds the evaluation: orders are evaluated in fixed-size
    batches walking the canonical permutation order, the budget is consulted
    at batch boundaries, and the canonical order itself always runs first —
    so a budgeted call always returns at least one candidate (unless every
    order is rejected) and marks the budget
    {{!Amg_robust.Budget.degraded} degraded} when it stopped early.  With an
    injected clock or an eval cap the returned prefix is a pure function of
    the budget parameters (identical for every domain count); a real
    wall-clock deadline may additionally cut a batch short, still yielding a
    canonical-order prefix of results. *)

val optimize :
  Env.t ->
  name:string ->
  ?base:Amg_layout.Lobj.t ->
  ?rating:Rating.t ->
  ?max_orders:int ->
  ?domains:int ->
  ?budget:Amg_robust.Budget.t ->
  ?cache:Prefix_cache.t ->
  ?scope:int ->
  ?store:Amg_store.Store.t * string ->
  step list ->
  Amg_layout.Lobj.t * float * step list
(** The best order's result, its rating, and the order itself; rating ties
    go to the earliest order in exploration order.  With [?budget], the best
    of the evaluated prefix (see {!evaluate_orders}) — best-so-far when the
    budget marks degraded.

    [?store] is [(store, key)]: a durable result store plus the canonical
    key for this module instance (see {!Amg_store.Store.signature}).  On an
    exact key hit — the search strategy and its parameters are appended to
    the key internally — the stored order replays through the prefix cache
    and the search is skipped entirely; the rating is recomputed from the
    rebuilt layout, never trusted from disk.  The store is only consulted
    for unbudgeted, default-rated searches and only written back (strictly
    better ratings win) by non-degraded ones, so results stay byte-identical
    to a store-less run.
    @raise Env.Rejected when every order is rejected. *)

val optimize_bb :
  Env.t ->
  name:string ->
  ?base:Amg_layout.Lobj.t ->
  ?rating:Rating.t ->
  ?domains:int ->
  ?budget:Amg_robust.Budget.t ->
  ?cache:Prefix_cache.t ->
  ?scope:int ->
  ?store:Amg_store.Store.t * string ->
  step list ->
  Amg_layout.Lobj.t * float * step list * int
(** Branch-and-bound over orders: same optimum as the exhaustive search,
    usually visiting far fewer nodes.  The lower bound on a partial order
    hulls the partial bounding box with the cross-axis spans of the
    remaining [`Keep] objects (those spans are invariant under placement;
    under the permissive policy, which may skip objects, the bound falls
    back to the partial box alone) and is checked both at node entry —
    pruning a whole subtree before any placement, counted as
    [optimize.bb_pruned_by_bound] — and per child ([optimize.bb_pruned]),
    where a cached child bounding box decides without placing.  The search
    decomposes into one sub-search per first step, each seeded with the
    canonical order's rating as initial incumbent, and merges the
    sub-search winners in canonical order — the chosen order, rating and
    node count (the last component) are identical for every [?domains].

    With [?budget], an eval cap is turned into a per-sub-search node quota
    (a pure function of the cap and the step count): each sub-search
    explores a deterministic DFS prefix and returns its best within it, so
    the degraded result is identical for every domain count; the canonical
    order is always rated and is the guaranteed best-so-far fallback.  A
    real wall-clock deadline additionally stops sub-searches mid-DFS
    (best-effort).
    @raise Env.Rejected when every order is rejected. *)

val optimize_local :
  Env.t ->
  name:string ->
  ?base:Amg_layout.Lobj.t ->
  ?rating:Rating.t ->
  ?restarts:int ->
  ?seed:int ->
  ?domains:int ->
  ?budget:Amg_robust.Budget.t ->
  ?cache:Prefix_cache.t ->
  ?scope:int ->
  ?store:Amg_store.Store.t * string ->
  step list ->
  Amg_layout.Lobj.t * float * step list * int
(** Heuristic order search for step counts beyond exhaustive reach:
    steepest-descent hill climbing over pairwise swaps — each round
    evaluates the full swap neighbourhood (in parallel) and accepts the
    best improving candidate, ties to the lowest swap index — with
    [restarts] deterministically shuffled starting orders ([seed] makes
    runs reproducible).  Never worse than the best starting order; not
    guaranteed optimal.  The last component is the number of
    rebuild-and-rate evaluations performed, which is also independent of
    [?domains].

    With [?budget], whole rounds (and whole restarts) are refused once the
    budget is out: an eval cap never splits a round, so the climbing
    trajectory — and the degraded best-so-far — is a pure function of the
    budget parameters for every domain count.  The first start is always
    rated, so a best-so-far exists even under a zero budget.  A real
    wall-clock deadline may additionally cut a round short (best-effort).
    @raise Env.Rejected when every order is rejected. *)
