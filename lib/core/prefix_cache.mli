(** Transposition cache over compaction-order prefixes.

    The successive compactor is deterministic, so the layout after placing
    a step prefix is a pure function of the environment and the prefix.
    This cache maps each explored prefix — keyed by a [~scope] integer
    and the steps' canonical {!Optimize.step} uids — to the partial
    layout plus its partial rating ingredient (the bounding box).  All
    optimizer searches share it: an evaluation resumes from the deepest
    cached prefix instead of replaying it.

    {b Storage} (DESIGN.md §11).  A depth-1 entry keeps a compact full
    copy of its one-step layout — the chain anchor.  Every deeper entry
    keeps only the {!Amg_layout.Lobj.delta} between its parent prefix and
    itself (the journal window the optimizer extracted while applying
    that one step), so an entry costs bytes proportional to one step, not
    to the whole partial layout.  A lookup materializes its result by
    copying the anchor and replaying the delta chain.  Entries only exist
    under a live parent entry (chains are always materializable);
    evicting an entry therefore takes its whole entry subtree with it.

    {b Admission.}  Prefixes at depth <= [admit_depth] are admitted
    unconditionally; deeper prefixes only once their trie node has seen
    [admit_visits] store attempts — one-shot deep suffixes (the bulk of a
    search's stores) never cost budget bytes.  Admission changes which
    entries exist, i.e. wall time, never results.

    The scope delimits where sharing is valid.  A search over a fresh
    main object passes the environment's {!Env.stamp} (prefix → layout is
    a pure function of the environment, so sharing across calls is
    sound); a search seeded from a [?base] object passes a token unique
    to that call, giving intra-search sharing only.

    {b Determinism (§7 contract).}  Entries replay a faithful redo log of
    a deterministic build, so a hit yields observably identical state to
    a fresh rebuild.  Sharing may change wall time, never results:
    ratings, chosen orders, eval and node counts are cache-independent.
    Only the hit/miss/eviction counters depend on cache state (and, with
    several domains, on scheduling).

    {b Concurrency.}  Internally sharded per pool participant
    ({!Amg_parallel.Pool.self}); a participant only ever touches its own
    shard, so the hot path takes no locks.  A single atomic byte total
    enforces the LRU budget across shards: the storing participant evicts
    from its own shard when the total exceeds the budget.

    Obs counters: [prefix_cache.hits], [prefix_cache.misses],
    [prefix_cache.evictions], [prefix_cache.admitted],
    [prefix_cache.rejected], [prefix_cache.bytes] (cumulative stored
    bytes), and per-depth variants [prefix_cache.hits.d<k>] (likewise
    [misses]/[evictions]) bucketed up to [d12+]; current occupancy is in
    {!stats}. *)

type t

type depth_stats = {
  d_depth : int;
      (** Depth bucket, [1 ..] — the last bucket aggregates all deeper. *)
  d_hits : int;
  d_misses : int;  (** Attributed to the depth where the chain broke. *)
  d_evictions : int;
  d_entries : int;  (** Currently live. *)
  d_bytes : int;  (** Currently resident. *)
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  admitted : int;  (** Entries ever inserted; [= entries + evictions]. *)
  rejected : int;  (** Store attempts refused by the admission policy. *)
  bytes : int;  (** currently resident *)
  entries : int;
  per_depth : depth_stats list;
}

val depth_buckets : int
(** Number of per-depth stat buckets (the last aggregates deeper). *)

val create :
  ?budget_bytes:int -> ?admit_depth:int -> ?admit_visits:int -> unit -> t
(** Fresh cache with the given LRU byte budget (default 64 MiB).
    [budget_bytes = 0] yields a disabled cache.  [admit_depth] (default 4)
    and [admit_visits] (default 2) set the admission policy; both are
    clamped to >= 1. *)

val disabled : t
(** A no-op cache: lookups miss without counting, stores are ignored.
    Pass it to a search to opt out of sharing. *)

val enabled : t -> bool

val find : t -> scope:int -> name:string -> int list -> Amg_layout.Lobj.t option
(** [find t ~scope ~name uids] materializes a fresh layout (named [name])
    for exactly the prefix [uids] — anchor copy plus delta-chain replay —
    if every entry along the chain is present. *)

val find_longest :
  t -> scope:int -> name:string -> int list -> (int * Amg_layout.Lobj.t) option
(** Deepest cached prefix of [uids]: [(k, obj)] means [obj] is a fresh
    materialization of the layout after the first [k] steps ([k >= 1]). *)

val peek_bbox :
  t -> scope:int -> int list -> Amg_geometry.Rect.t option option
(** The stored partial bounding box for exactly [uids], without
    materializing the entry — a cheap bound probe for branch-and-bound
    ([Some None] is a cached empty layout).  Does not count as a hit or
    refresh the entry. *)

val store :
  t ->
  scope:int ->
  int list ->
  delta:(unit -> Amg_layout.Lobj.delta) ->
  Amg_layout.Lobj.t ->
  bool
(** Cache the layout for prefix [uids].  [delta] must produce the journal
    window covering exactly the last step of the prefix (the mutations
    from the parent prefix's state to [obj]'s); it is only forced when the
    entry is admitted at depth >= 2 — depth-1 entries copy [obj] instead.
    Call only with a fully applied prefix — a step aborted mid-placement
    must not be stored (the budget/fault paths rely on this to keep the
    cache consistent).  No-op on the empty prefix or a disabled cache.
    Counts one visit on the prefix's trie node either way; the entry is
    inserted when the admission policy and the live-parent invariant
    allow.

    Returns whether the prefix's entry is live in the calling
    participant's shard after the call.  [false] means no deeper prefix
    can be admitted or found in this shard until this one is stored again
    (the live-parent invariant) — callers use it to skip guaranteed-miss
    lookups and the journaling work feeding [delta], calling {!note_visit}
    instead. *)

val note_visit : t -> scope:int -> int list -> unit
(** Count a store attempt for [uids] — one visit on its trie node, one
    admission rejection — without offering an entry.  The cheap substitute
    for {!store} when the caller already knows the parent entry is dead
    (the entry would be rejected anyway); the visit still feeds the
    admission policy, so a prefix revisited by a later search gets
    admitted exactly as if {!store} had been called. *)

val stats : t -> stats
(** Summed over shards.  Racy-but-consistent-enough when read while other
    participants are active; exact once the pool is quiesced — then
    [admitted = entries + evictions] holds exactly. *)

val default : unit -> t
(** The process-wide cache used by searches when [?cache] is omitted.
    Created on first use with the configured budget and policy. *)

val set_default_budget_mb : int -> unit
(** Configure the default cache's budget in MiB ([0] disables sharing);
    [amgen --cache-mb] sets it.  Replaces the default cache, dropping any
    cached prefixes. *)

val set_default_policy : ?admit_depth:int -> ?admit_visits:int -> unit -> unit
(** Configure the default cache's admission policy
    ([amgen --cache-admit-depth] / [--cache-admit-visits] set it).
    Replaces the default cache, dropping any cached prefixes. *)

val register_metrics : unit -> unit
(** Register callback-backed instruments over the {!default} cache in
    the {!Amg_obs.Metrics} registry: hit/miss/eviction/admission
    counters, byte and entry gauges, and a per-depth-bucket hit-rate
    gauge (label [depth="1".."12+"]).  Idempotent; callbacks read the
    current default instance at snapshot time, so they survive budget
    and policy resets.  The serve daemon calls this at startup. *)
