(** Transposition cache over compaction-order prefixes.

    The successive compactor is deterministic, so the layout after placing
    a step prefix is a pure function of the environment and the prefix.
    This cache maps each explored prefix — keyed by a [~scope] integer
    and the steps' canonical {!Optimize.step} uids — to a snapshot of the
    partial layout plus its partial rating ingredient (the bounding box).
    All optimizer searches share it: an evaluation resumes from the
    deepest cached prefix instead of replaying it.

    The scope delimits where sharing is valid.  A search over a fresh
    main object passes the environment's {!Env.stamp} (prefix → layout is
    a pure function of the environment, so sharing across calls is
    sound); a search seeded from a [?base] object passes a token unique
    to that call, giving intra-search sharing only.

    {b Determinism (§7 contract).}  Entries are faithful copies of
    deterministic builds and lookups return fresh {!Amg_layout.Lobj.copy}s,
    so a hit yields byte-identical state to a fresh rebuild.  Sharing may
    change wall time, never results: ratings, chosen orders, eval and node
    counts are cache-independent.  Only the hit/miss/eviction counters
    depend on cache state (and, with several domains, on scheduling).

    {b Concurrency.}  Internally sharded per pool participant
    ({!Amg_parallel.Pool.self}); a participant only ever touches its own
    shard, so the hot path takes no locks.  A single atomic byte total
    enforces the LRU budget across shards: the storing participant evicts
    from its own shard when the total exceeds the budget.

    Obs counters: [prefix_cache.hits], [prefix_cache.misses],
    [prefix_cache.evictions], [prefix_cache.bytes] (cumulative stored
    bytes); current occupancy is in {!stats}. *)

type t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  bytes : int;   (** currently resident *)
  entries : int;
}

val create : ?budget_bytes:int -> unit -> t
(** Fresh cache with the given LRU byte budget (default 64 MiB).
    [budget_bytes = 0] yields a disabled cache. *)

val disabled : t
(** A no-op cache: lookups miss without counting, stores are ignored.
    Pass it to a search to opt out of sharing. *)

val enabled : t -> bool

val find : t -> scope:int -> name:string -> int list -> Amg_layout.Lobj.t option
(** [find t ~scope ~name uids] returns a fresh copy (named [name]) of the
    layout cached for exactly the prefix [uids], if present. *)

val find_longest :
  t -> scope:int -> name:string -> int list -> (int * Amg_layout.Lobj.t) option
(** Deepest cached prefix of [uids]: [(k, obj)] means [obj] is a fresh
    copy of the layout after the first [k] steps ([k >= 1]). *)

val peek_bbox :
  t -> scope:int -> int list -> Amg_geometry.Rect.t option option
(** The stored partial bounding box for exactly [uids], without copying
    the entry — a cheap bound probe for branch-and-bound ([Some None] is
    a cached empty layout).  Does not count as a hit or refresh the
    entry. *)

val store : t -> scope:int -> int list -> Amg_layout.Lobj.t -> unit
(** Cache the layout for prefix [uids].  The object is copied internally,
    so the caller may keep mutating it.  Call only with a fully applied
    prefix — a step aborted mid-placement must not be stored (the
    budget/fault paths rely on this to keep the cache consistent).
    No-op on the empty prefix or a disabled cache. *)

val stats : t -> stats
(** Summed over shards.  Racy-but-consistent-enough when read while other
    participants are active; exact once the pool is quiesced. *)

val default : unit -> t
(** The process-wide cache used by searches when [?cache] is omitted.
    Created on first use with the configured budget. *)

val set_default_budget_mb : int -> unit
(** Configure the default cache's budget in MiB ([0] disables sharing);
    [amgen --cache-mb] sets it.  Replaces the default cache, dropping any
    cached prefixes. *)
