module Technology = Amg_tech.Technology
module Rules = Amg_tech.Rules

type t = { tech : Technology.t; stamp : int }

(* Process-unique environment stamp: cache keys derived from step ids are
   scoped by it, so entries can never leak between environments (different
   technology decks build different geometry from the same steps). *)
let next_stamp = Atomic.make 0

let create tech = { tech; stamp = Atomic.fetch_and_add next_stamp 1 }

let bicmos () = create (Amg_tech.Bicmos1u.get ())

let tech t = t.tech

let stamp t = t.stamp

let rules t = Technology.rules t.tech

let grid t = Rules.grid (rules t)

let um = Amg_geometry.Units.of_um

exception Rejected of string

let reject fmt = Fmt.kstr (fun m -> raise (Rejected m)) fmt
