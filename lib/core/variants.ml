(* Backtracking over topology variants (§2.1, §2.4).

   "Due to design-rule constraints, the designer has to specify different
   topology alternatives for parameterizable modules.  For this purpose
   backtracking is supported … because no complex if-then-structures with
   deep hierarchies have to be programmed."

   A computation is a tree of alternatives; a branch that raises
   [Env.Rejected] is abandoned and the next alternative is tried.  The
   rating function of §2.4 selects among the surviving results. *)

module Pool = Amg_parallel.Pool
module Obs = Amg_obs.Obs
module Budget = Amg_robust.Budget
module Lobj = Amg_layout.Lobj

let budget_exhausted = "variants: budget exhausted before this alternative"

(* Refuse the next leaf when the budget is out; refusing marks the run
   degraded (there was work left to do). *)
let exhausted = function
  | None -> false
  | Some b ->
      if Budget.stopped b || Budget.would_exceed b 1 then begin
        Budget.stop b;
        Budget.mark_degraded b;
        true
      end
      else false

let spend = function None -> () | Some b -> Budget.spend b 1

(* Run one alternative body under a snapshot of every rollback object: a
   branch that raises — [Env.Rejected] backtracking, a budget stop, an
   injected fault — rewinds the shared objects to their pre-branch state
   instead of leaving partial placements behind, so the next alternative
   starts clean.  Successful branches keep their mutations (accumulation
   across alternatives stays the caller's call).  O(1) when [rollback] is
   empty; snapshots are released either way (see Lobj's LIFO rule, which
   proper nesting of alternatives respects per object). *)
let protected rollback f =
  match rollback with
  | [] -> f ()
  | roots -> (
      let snaps = List.map (fun o -> (o, Lobj.snapshot o)) roots in
      let release () =
        List.iter (fun (o, s) -> Lobj.release o s) (List.rev snaps)
      in
      match f () with
      | v ->
          release ();
          v
      | exception e ->
          List.iter (fun (o, s) -> Lobj.restore o s) snaps;
          release ();
          raise e)

type 'a t =
  | Return : 'a -> 'a t
  | Delay : (unit -> 'a) -> 'a t
  | Alt : 'a t list -> 'a t
  | Bind : 'b t * ('b -> 'a t) -> 'a t

let return x = Return x

let delay f = Delay f

let alt ts = Alt ts

let of_list xs = Alt (List.map (fun x -> Return x) xs)

let fail msg = Delay (fun () -> Env.reject "%s" msg)

let bind m f = Bind (m, f)

let map f m = Bind (m, fun x -> Return (f x))

let ( let* ) = bind
let ( let+ ) m f = map f m

(* Depth-first enumeration; every [Env.Rejected] turns into an [Error].
   [b] is an optional budget: once it stops, remaining alternatives are not
   evaluated and appear as [Error budget_exhausted] entries, so the result
   list always has one entry per leaf and positional consumers stay
   aligned.  The budget is consulted at alternative boundaries only. *)
let rec run_seq :
    type a. Budget.t option -> Lobj.t list -> a t -> (a, string) result list =
 fun b rb -> function
  | Return x -> [ Ok x ]
  | Delay f ->
      if exhausted b then [ Error budget_exhausted ]
      else begin
        spend b;
        try [ Ok (protected rb f) ] with Env.Rejected m -> [ Error m ]
      end
  | Alt ts ->
      List.concat_map
        (fun t ->
          (match b with Some bu -> Budget.poll bu | None -> ());
          run_seq b rb t)
        ts
  | Bind (m, f) ->
      run_seq b rb m
      |> List.concat_map (function
           | Error m -> [ Error m ]
           | Ok v -> (
               try run_seq b rb (f v) with Env.Rejected m -> [ Error m ]))

(* With a pool, sibling alternatives reachable from the caller's domain are
   evaluated concurrently (each branch sequentially within itself — a
   branch body must not touch the pool again).  Branch results are
   concatenated in branch order, so the enumeration is the same list
   [run_seq] produces.  Branches build independent layouts; the generator
   code inside them must follow the per-worker copy rule (own [Lobj]s
   only). *)
let rec run_par : type a. Budget.t option -> Pool.t -> a t -> (a, string) result list =
 fun b pool -> function
  | Alt ts -> (
      match b with
      | None -> List.concat (Pool.map_list pool (run_seq None []) ts)
      | Some bu ->
          (* Branches the cancellation flag skipped appear as single
             [Error budget_exhausted] entries in branch order. *)
          let branches =
            Pool.map_array_cancel pool ~cancel:(Budget.task_cancel bu)
              (run_seq b []) (Array.of_list ts)
          in
          Array.to_list branches
          |> List.concat_map (function
               | Some rs -> rs
               | None ->
                   Budget.mark_degraded bu;
                   [ Error budget_exhausted ]))
  | Bind (m, f) ->
      run_par b pool m
      |> List.concat_map (function
           | Error m -> [ Error m ]
           | Ok v -> (
               try run_par b pool (f v) with Env.Rejected m -> [ Error m ]))
  | t -> run_seq b [] t

let run ?pool ?budget ?(rollback = []) m =
  Obs.span "variants.run" @@ fun () ->
  let results =
    (* Rollback snapshots mutate the shared roots in place, so branches
       must run one at a time: rollback forces the sequential path even
       when a pool is available. *)
    match (pool, rollback) with
    | Some pool, [] when Pool.size pool > 1 -> run_par budget pool m
    | _ -> run_seq budget rollback m
  in
  if Obs.enabled () then begin
    let ok =
      List.length (List.filter (function Ok _ -> true | Error _ -> false) results)
    in
    Obs.count "variants.successes" ok;
    Obs.count "variants.failures" (List.length results - ok)
  end;
  results

let successes ?pool ?budget ?rollback m =
  List.filter_map
    (function Ok x -> Some x | Error _ -> None)
    (run ?pool ?budget ?rollback m)

let failures ?pool ?budget ?rollback m =
  List.filter_map
    (function Error e -> Some e | Ok _ -> None)
    (run ?pool ?budget ?rollback m)

(* First success, depth first — plain backtracking. *)
let first ?(rollback = []) m =
  Obs.span "variants.first" @@ fun () ->
  let rec go : type a. a t -> a option = function
    | Return x -> Some x
    | Delay f -> ( try Some (protected rollback f) with Env.Rejected _ -> None)
    | Alt ts ->
        List.fold_left
          (fun acc t -> match acc with Some _ -> acc | None -> go t)
          None ts
    | Bind (m, f) -> (
        (* Try each solution of [m] in order until one continuation
           succeeds. *)
        let rec try_solutions = function
          | [] -> None
          | Ok v :: rest -> (
              match (try go (f v) with Env.Rejected _ -> None) with
              | Some r -> Some r
              | None -> try_solutions rest)
          | Error _ :: rest -> try_solutions rest
        in
        try_solutions (run_seq None rollback m))
  in
  let r = go m in
  (match r with
  | Some _ -> Obs.count "variants.successes" 1
  | None -> Obs.count "variants.failures" 1);
  r

let first_exn ?rollback m =
  match first ?rollback m with
  | Some x -> x
  | None -> Env.reject "Variants.first_exn: all alternatives rejected"

(* Rate every surviving variant and keep the best (lowest rating) —
   "the rating function is also applied to select the best variant"
   (§2.4).  The fold runs over the enumeration order with a strict
   comparison, so the pick is the same with and without a pool. *)
let best ?pool ?budget ?rollback ~rate m =
  let rated =
    List.map (fun x -> (x, rate x)) (successes ?pool ?budget ?rollback m)
  in
  List.fold_left
    (fun acc (x, r) ->
      match acc with
      | Some (_, br) when br <= r -> acc
      | _ -> Some (x, r))
    None rated

let best_exn ?pool ?budget ?rollback ~rate m =
  match best ?pool ?budget ?rollback ~rate m with
  | Some xr -> xr
  | None -> Env.reject "Variants.best_exn: all alternatives rejected"
