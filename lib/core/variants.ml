(* Backtracking over topology variants (§2.1, §2.4).

   "Due to design-rule constraints, the designer has to specify different
   topology alternatives for parameterizable modules.  For this purpose
   backtracking is supported … because no complex if-then-structures with
   deep hierarchies have to be programmed."

   A computation is a tree of alternatives; a branch that raises
   [Env.Rejected] is abandoned and the next alternative is tried.  The
   rating function of §2.4 selects among the surviving results. *)

module Pool = Amg_parallel.Pool
module Obs = Amg_obs.Obs

type 'a t =
  | Return : 'a -> 'a t
  | Delay : (unit -> 'a) -> 'a t
  | Alt : 'a t list -> 'a t
  | Bind : 'b t * ('b -> 'a t) -> 'a t

let return x = Return x

let delay f = Delay f

let alt ts = Alt ts

let of_list xs = Alt (List.map (fun x -> Return x) xs)

let fail msg = Delay (fun () -> Env.reject "%s" msg)

let bind m f = Bind (m, f)

let map f m = Bind (m, fun x -> Return (f x))

let ( let* ) = bind
let ( let+ ) m f = map f m

(* Depth-first enumeration; every [Env.Rejected] turns into an [Error]. *)
let rec run_seq : type a. a t -> (a, string) result list = function
  | Return x -> [ Ok x ]
  | Delay f -> ( try [ Ok (f ()) ] with Env.Rejected m -> [ Error m ])
  | Alt ts -> List.concat_map run_seq ts
  | Bind (m, f) ->
      run_seq m
      |> List.concat_map (function
           | Error m -> [ Error m ]
           | Ok v -> ( try run_seq (f v) with Env.Rejected m -> [ Error m ]))

(* With a pool, sibling alternatives reachable from the caller's domain are
   evaluated concurrently (each branch sequentially within itself — a
   branch body must not touch the pool again).  Branch results are
   concatenated in branch order, so the enumeration is the same list
   [run_seq] produces.  Branches build independent layouts; the generator
   code inside them must follow the per-worker copy rule (own [Lobj]s
   only). *)
let rec run_par : type a. Pool.t -> a t -> (a, string) result list =
 fun pool -> function
  | Alt ts -> List.concat (Pool.map_list pool run_seq ts)
  | Bind (m, f) ->
      run_par pool m
      |> List.concat_map (function
           | Error m -> [ Error m ]
           | Ok v -> (
               try run_par pool (f v) with Env.Rejected m -> [ Error m ]))
  | t -> run_seq t

let run ?pool m =
  Obs.span "variants.run" @@ fun () ->
  let results =
    match pool with
    | Some pool when Pool.size pool > 1 -> run_par pool m
    | _ -> run_seq m
  in
  if Obs.enabled () then begin
    let ok =
      List.length (List.filter (function Ok _ -> true | Error _ -> false) results)
    in
    Obs.count "variants.successes" ok;
    Obs.count "variants.failures" (List.length results - ok)
  end;
  results

let successes ?pool m =
  List.filter_map (function Ok x -> Some x | Error _ -> None) (run ?pool m)

let failures ?pool m =
  List.filter_map (function Error e -> Some e | Ok _ -> None) (run ?pool m)

(* First success, depth first — plain backtracking. *)
let first m =
  Obs.span "variants.first" @@ fun () ->
  let rec go : type a. a t -> a option = function
    | Return x -> Some x
    | Delay f -> ( try Some (f ()) with Env.Rejected _ -> None)
    | Alt ts ->
        List.fold_left
          (fun acc t -> match acc with Some _ -> acc | None -> go t)
          None ts
    | Bind (m, f) -> (
        (* Try each solution of [m] in order until one continuation
           succeeds. *)
        let rec try_solutions = function
          | [] -> None
          | Ok v :: rest -> (
              match (try go (f v) with Env.Rejected _ -> None) with
              | Some r -> Some r
              | None -> try_solutions rest)
          | Error _ :: rest -> try_solutions rest
        in
        try_solutions (run_seq m))
  in
  let r = go m in
  (match r with
  | Some _ -> Obs.count "variants.successes" 1
  | None -> Obs.count "variants.failures" 1);
  r

let first_exn m =
  match first m with
  | Some x -> x
  | None -> Env.reject "Variants.first_exn: all alternatives rejected"

(* Rate every surviving variant and keep the best (lowest rating) —
   "the rating function is also applied to select the best variant"
   (§2.4).  The fold runs over the enumeration order with a strict
   comparison, so the pick is the same with and without a pool. *)
let best ?pool ~rate m =
  let rated = List.map (fun x -> (x, rate x)) (successes ?pool m) in
  List.fold_left
    (fun acc (x, r) ->
      match acc with
      | Some (_, br) when br <= r -> acc
      | _ -> Some (x, r))
    None rated

let best_exn ?pool ~rate m =
  match best ?pool ~rate m with
  | Some xr -> xr
  | None -> Env.reject "Variants.best_exn: all alternatives rejected"
