(** Backtracking over topology variants (§2.1, §2.4).

    A ['a t] is a tree of alternatives.  Generator code inside a branch may
    raise {!Env.Rejected} (directly or through any primitive); that branch
    is abandoned and the next alternative tried — the paper's backtracking
    "which eases the writing of different variants of a module because no
    complex if-then-structures … have to be programmed". *)

type 'a t

val return : 'a -> 'a t

val delay : (unit -> 'a) -> 'a t
(** A single alternative, evaluated lazily; may raise {!Env.Rejected}. *)

val alt : 'a t list -> 'a t
(** Try each in order. *)

val of_list : 'a list -> 'a t

val fail : string -> 'a t

val bind : 'a t -> ('a -> 'b t) -> 'b t
val map : ('a -> 'b) -> 'a t -> 'b t

val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
val ( let+ ) : 'a t -> ('a -> 'b) -> 'b t

val run :
  ?pool:Amg_parallel.Pool.t ->
  ?budget:Amg_robust.Budget.t ->
  ?rollback:Amg_layout.Lobj.t list ->
  'a t ->
  ('a, string) result list
(** Depth-first enumeration of every alternative; rejections appear as
    [Error] with the rejection message.  With [?pool], sibling
    alternatives of each [alt] reachable from the calling domain are
    evaluated concurrently (each branch sequentially within itself; branch
    code must only mutate layout objects it created).  The result list is
    identical to the sequential enumeration — branch results are
    concatenated in branch order.

    [?rollback] (default [[]]) names shared layout objects the branch
    bodies mutate in place: each [delay] body runs under an
    {!Amg_layout.Lobj.snapshot} of every listed object, and a body that
    raises — backtracking, a budget stop, an injected fault — restores
    them before the next alternative runs, so a failed branch leaves no
    partial placements behind.  Successful branches keep their mutations.
    Because the snapshots rewind shared state, a non-empty [?rollback]
    forces sequential evaluation even when [?pool] is given.

    With [?budget], alternatives beyond the budget are not evaluated and
    appear as [Error] entries ("budget exhausted"), in enumeration order;
    the budget is marked {{!Amg_robust.Budget.degraded} degraded}.  The
    budget is consulted at alternative boundaries (and at the pool's task
    claims under a real wall-clock deadline), so already-running branches
    always finish. *)

val successes :
  ?pool:Amg_parallel.Pool.t ->
  ?budget:Amg_robust.Budget.t ->
  ?rollback:Amg_layout.Lobj.t list ->
  'a t ->
  'a list

val failures :
  ?pool:Amg_parallel.Pool.t ->
  ?budget:Amg_robust.Budget.t ->
  ?rollback:Amg_layout.Lobj.t list ->
  'a t ->
  string list

val first : ?rollback:Amg_layout.Lobj.t list -> 'a t -> 'a option
(** Plain backtracking: the first alternative that survives.  [?rollback]
    as in {!run} — rejected branches restore the listed objects. *)

val first_exn : ?rollback:Amg_layout.Lobj.t list -> 'a t -> 'a
(** @raise Env.Rejected when every alternative is rejected. *)

val best :
  ?pool:Amg_parallel.Pool.t ->
  ?budget:Amg_robust.Budget.t ->
  ?rollback:Amg_layout.Lobj.t list ->
  rate:('a -> float) ->
  'a t ->
  ('a * float) option
(** Evaluate all surviving variants and keep the one with the lowest
    rating — §2.4's variant selection.  Ties go to the earliest variant
    in enumeration order, with or without a pool.  With [?budget], the best
    of the evaluated prefix (see {!run}). *)

val best_exn :
  ?pool:Amg_parallel.Pool.t ->
  ?budget:Amg_robust.Budget.t ->
  ?rollback:Amg_layout.Lobj.t list ->
  rate:('a -> float) ->
  'a t ->
  'a * float
(** @raise Env.Rejected when every alternative is rejected (or the budget
    refused every alternative). *)
