(** Generator environment: the technology under which modules are built.

    Every primitive takes an environment so the same module source works in
    any technology ("the modules are written in a technology independent
    way", §4). *)

type t

val create : Amg_tech.Technology.t -> t

val bicmos : unit -> t
(** Environment over the built-in generic 1 um BiCMOS deck. *)

val tech : t -> Amg_tech.Technology.t

val stamp : t -> int
(** Process-unique id of this environment, assigned at {!create}.  The
    optimizer's prefix cache scopes its keys by it, so entries built under
    one technology can never serve another. *)
val rules : t -> Amg_tech.Rules.t
val grid : t -> int

val um : float -> int
(** Convenience re-export of {!Amg_geometry.Units.of_um}. *)

exception Rejected of string
(** Raised by a generator when a topology variant cannot satisfy the design
    rules ("If a rule cannot be fulfilled an error message occurs", §2.1);
    the {!Variants} engine backtracks over it. *)

val reject : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Rejected} with a formatted message. *)
