(* Transposition cache over compaction-order prefixes.

   Every optimizer search (exhaustive, branch-and-bound, local) evaluates
   orders that share long common prefixes, and the successive compactor is
   deterministic: the layout after placing steps [s1; …; sk] is a pure
   function of the environment and that prefix.  The cache maps each
   explored prefix — keyed by the environment stamp and the steps'
   canonical uids — to a snapshot of the partial layout plus its partial
   rating ingredient (the bounding-box area), so a later evaluation resumes
   from the deepest cached prefix instead of replaying it.

   Determinism: an entry is a faithful [Lobj.copy] of a deterministic
   build, and [find]/[find_longest] hand back fresh copies, so a hit
   produces byte-identical state to a fresh rebuild — sharing changes
   time, never results (the §7 contract).  Ratings, chosen orders, node
   and eval counts are therefore cache-independent; only the hit/miss/
   eviction counters (and wall time) depend on cache state.

   Concurrency: one shard per pool participant ({!Amg_parallel.Pool.self}),
   so shard internals (trie, LRU list, counters) are only ever touched by
   their owning domain — no locks on the hot path.  The global byte total
   is an atomic; when it exceeds the budget the storing participant evicts
   from its own shard, least-recently-used first. *)

module Lobj = Amg_layout.Lobj
module Pool = Amg_parallel.Pool
module Obs = Amg_obs.Obs

type node = {
  key : int; (* uid, or the environment stamp at depth 0 *)
  parent : node option;
  children : (int, node) Hashtbl.t;
  mutable entry : entry option;
}

and entry = {
  e_obj : Lobj.t; (* private copy; never handed out directly *)
  e_bbox : Amg_geometry.Rect.t option; (* bbox at store time — the bound peek *)
  e_bytes : int;
  e_node : node;
  mutable e_prev : entry option; (* toward most-recently-used *)
  mutable e_next : entry option; (* toward least-recently-used *)
}

type shard = {
  root : node;
  mutable mru : entry option;
  mutable lru : entry option;
  mutable s_hits : int;
  mutable s_misses : int;
  mutable s_evictions : int;
  mutable s_bytes : int;
  mutable s_entries : int;
}

type t = {
  budget : int; (* bytes; 0 = disabled *)
  bytes : int Atomic.t;
  shards : shard array Atomic.t; (* index = participant; grown on demand *)
  grow : Mutex.t;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  bytes : int;
  entries : int;
}

let mk_node ?parent key =
  { key; parent; children = Hashtbl.create 4; entry = None }

let mk_shard () =
  {
    root = mk_node 0;
    mru = None;
    lru = None;
    s_hits = 0;
    s_misses = 0;
    s_evictions = 0;
    s_bytes = 0;
    s_entries = 0;
  }

let create ?(budget_bytes = 64 * 1024 * 1024) () =
  {
    budget = max 0 budget_bytes;
    bytes = Atomic.make 0;
    shards = Atomic.make [| mk_shard () |];
    grow = Mutex.create ();
  }

let disabled = create ~budget_bytes:0 ()

let enabled t = t.budget > 0

(* The calling participant's shard; other participants' shards are never
   read — their owner may be mutating them. *)
let shard (t : t) =
  let i = Pool.self () in
  let a = Atomic.get t.shards in
  if i < Array.length a then a.(i)
  else begin
    Mutex.lock t.grow;
    let a = Atomic.get t.shards in
    let a =
      if i < Array.length a then a
      else begin
        let b =
          Array.init (i + 1) (fun j ->
              if j < Array.length a then a.(j) else mk_shard ())
        in
        Atomic.set t.shards b;
        b
      end
    in
    Mutex.unlock t.grow;
    a.(i)
  end

(* --- LRU list maintenance (shard-local) --- *)

let unlink sh e =
  (match e.e_prev with Some p -> p.e_next <- e.e_next | None -> sh.mru <- e.e_next);
  (match e.e_next with Some n -> n.e_prev <- e.e_prev | None -> sh.lru <- e.e_prev);
  e.e_prev <- None;
  e.e_next <- None

let push_front sh e =
  e.e_next <- sh.mru;
  e.e_prev <- None;
  (match sh.mru with Some m -> m.e_prev <- Some e | None -> sh.lru <- Some e);
  sh.mru <- Some e

let touch sh e =
  unlink sh e;
  push_front sh e

(* --- trie walk --- *)

let child node key = Hashtbl.find_opt node.children key

let walk node uids =
  List.fold_left
    (fun acc uid ->
      match acc with None -> None | Some n -> child n uid)
    (Some node) uids

let rec prune node =
  match (node.parent, node.entry) with
  | Some p, None when Hashtbl.length node.children = 0 ->
      Hashtbl.remove p.children node.key;
      prune p
  | _ -> ()

let drop_entry sh e =
  e.e_node.entry <- None;
  unlink sh e;
  sh.s_bytes <- sh.s_bytes - e.e_bytes;
  sh.s_entries <- sh.s_entries - 1;
  prune e.e_node

let evict_to_budget (t : t) sh =
  let continue = ref true in
  while !continue && Atomic.get t.bytes > t.budget do
    match sh.lru with
    | None -> continue := false (* own shard dry; others own their bytes *)
    | Some e ->
        drop_entry sh e;
        sh.s_evictions <- sh.s_evictions + 1;
        ignore (Atomic.fetch_and_add t.bytes (-e.e_bytes));
        Obs.count "prefix_cache.evictions" 1
  done

(* --- public operations --- *)

let find (t : t) ~scope ~name uids =
  if t.budget = 0 then None
  else begin
    let sh = shard t in
    match walk sh.root (scope :: uids) with
    | Some { entry = Some e; _ } ->
        sh.s_hits <- sh.s_hits + 1;
        Obs.count "prefix_cache.hits" 1;
        touch sh e;
        Some (Lobj.copy ~name e.e_obj)
    | _ ->
        sh.s_misses <- sh.s_misses + 1;
        Obs.count "prefix_cache.misses" 1;
        None
  end

let find_longest (t : t) ~scope ~name uids =
  if t.budget = 0 then None
  else begin
    let sh = shard t in
    let best = ref None in
    let rec go depth node uids =
      (match node.entry with
      | Some e -> best := Some (depth, e)
      | None -> ());
      match uids with
      | [] -> ()
      | uid :: rest -> (
          match child node uid with Some n -> go (depth + 1) n rest | None -> ())
    in
    (match child sh.root scope with Some n -> go 0 n uids | None -> ());
    match !best with
    | Some (depth, e) ->
        sh.s_hits <- sh.s_hits + 1;
        Obs.count "prefix_cache.hits" 1;
        touch sh e;
        Some (depth, Lobj.copy ~name e.e_obj)
    | None ->
        sh.s_misses <- sh.s_misses + 1;
        Obs.count "prefix_cache.misses" 1;
        None
  end

(* Bound peek for branch-and-bound: the stored partial bounding box
   without copying the entry (no counters, no LRU touch). *)
let peek_bbox (t : t) ~scope uids =
  if t.budget = 0 then None
  else
    match walk (shard t).root (scope :: uids) with
    | Some { entry = Some e; _ } -> Some e.e_bbox
    | _ -> None

let store (t : t) ~scope uids obj =
  if t.budget > 0 && uids <> [] then begin
    let sh = shard t in
    let node =
      List.fold_left
        (fun n uid ->
          match child n uid with
          | Some c -> c
          | None ->
              let c = mk_node ~parent:n uid in
              Hashtbl.replace n.children uid c;
              c)
        sh.root (scope :: uids)
    in
    match node.entry with
    | Some e -> touch sh e (* identical by determinism; just refresh *)
    | None ->
        let bytes = Lobj.approx_bytes obj in
        let e =
          {
            e_obj = Lobj.copy obj;
            e_bbox = Lobj.bbox obj;
            e_bytes = bytes;
            e_node = node;
            e_prev = None;
            e_next = None;
          }
        in
        node.entry <- Some e;
        push_front sh e;
        sh.s_bytes <- sh.s_bytes + bytes;
        sh.s_entries <- sh.s_entries + 1;
        ignore (Atomic.fetch_and_add t.bytes bytes);
        Obs.count "prefix_cache.bytes" bytes;
        evict_to_budget t sh
  end

let stats (t : t) =
  Array.fold_left
    (fun acc sh ->
      {
        hits = acc.hits + sh.s_hits;
        misses = acc.misses + sh.s_misses;
        evictions = acc.evictions + sh.s_evictions;
        bytes = acc.bytes + sh.s_bytes;
        entries = acc.entries + sh.s_entries;
      })
    { hits = 0; misses = 0; evictions = 0; bytes = 0; entries = 0 }
    (Atomic.get t.shards)

(* --- the process-wide default (amgen --cache-mb) --- *)

let default_budget_mb = Atomic.make 64

let default_cache : t option Atomic.t = Atomic.make None

let default () =
  match Atomic.get default_cache with
  | Some c -> c
  | None ->
      let c =
        match Atomic.get default_budget_mb with
        | 0 -> disabled
        | mb -> create ~budget_bytes:(mb * 1024 * 1024) ()
      in
      (* First-use race: both candidates are empty, either wins. *)
      if Atomic.compare_and_set default_cache None (Some c) then c
      else Option.get (Atomic.get default_cache)

let set_default_budget_mb mb =
  Atomic.set default_budget_mb (max 0 mb);
  Atomic.set default_cache None
