(* Transposition cache over compaction-order prefixes.

   Every optimizer search (exhaustive, branch-and-bound, local) evaluates
   orders that share long common prefixes, and the successive compactor is
   deterministic: the layout after placing steps [s1; …; sk] is a pure
   function of the environment and that prefix.  The cache maps each
   explored prefix — keyed by the environment stamp and the steps'
   canonical uids — to the partial layout plus its partial rating
   ingredient (the bounding-box area), so a later evaluation resumes
   from the deepest cached prefix instead of replaying it.

   Storage (DESIGN.md §11): a depth-1 entry holds a compact full copy of
   its (one-step) layout — the chain anchor; a deeper entry holds only the
   [Lobj.delta] between its parent prefix and itself, extracted from the
   snapshot journal by the optimizer while it applied the step.  A lookup
   materializes a layout by copying the anchor and replaying the delta
   chain down to the requested depth.  The invariant that makes every
   entry materializable: an entry exists only if its parent's entry
   exists — enforced at store time and preserved by evicting whole entry
   subtrees.

   Admission: storing every prefix of every candidate order floods the
   budget with one-shot deep suffixes and evicts the shareable shallow
   state before it is ever reused (the seed benchmark measured 28k hits
   against 933k misses).  Prefixes at depth <= [admit_depth] are admitted
   unconditionally; deeper ones only once their trie node has been
   visited [admit_visits] times — so only demonstrably shared deep
   prefixes cost bytes.  Admission changes only which entries exist,
   i.e. time, never results.

   Determinism: a hit replays a faithful redo log of a deterministic
   build, so it produces observably identical state to a fresh rebuild —
   sharing changes time, never results (the §7 contract).  Ratings,
   chosen orders, node and eval counts are therefore cache-independent;
   only the hit/miss/eviction counters (and wall time) depend on cache
   state.

   Concurrency: one shard per pool participant ({!Amg_parallel.Pool.self}),
   so shard internals (trie, LRU list, counters) are only ever touched by
   their owning domain — no locks on the hot path.  The global byte total
   is an atomic; when it exceeds the budget the storing participant evicts
   from its own shard, least-recently-used first.

   Accounting is conservative by construction: every admitted entry is
   counted once, every evicted entry once, so
   [admitted = entries (live) + evictions] holds at any quiescent point —
   the stats test asserts it. *)

module Lobj = Amg_layout.Lobj
module Pool = Amg_parallel.Pool
module Obs = Amg_obs.Obs

(* Per-depth counters are bucketed: depths beyond the last bucket fold
   into it.  12 buckets cover every workload in the bench suite. *)
let depth_buckets = 12

let bucket depth = min depth depth_buckets

(* Obs counter names per bucket, precomputed so the hot path never
   allocates a string. *)
let obs_names stem =
  Array.init (depth_buckets + 1) (fun d ->
      if d = depth_buckets then Printf.sprintf "prefix_cache.%s.d%d+" stem d
      else Printf.sprintf "prefix_cache.%s.d%d" stem d)

let hit_names = obs_names "hits"
let miss_names = obs_names "misses"
let eviction_names = obs_names "evictions"

type data =
  | Anchor of Lobj.t     (* depth 1: private full copy, the chain root *)
  | Suffix of Lobj.delta (* depth >= 2: steps from the parent prefix *)

type node = {
  key : int; (* uid, or the scope at depth 0 *)
  depth : int;
  parent : node option;
  children : (int, node) Hashtbl.t;
  mutable entry : entry option;
  mutable visits : int; (* store attempts; drives admission *)
}

and entry = {
  e_data : data;
  e_bbox : Amg_geometry.Rect.t option; (* bbox at store time — the bound peek *)
  e_bytes : int;
  e_node : node;
  mutable e_prev : entry option; (* toward most-recently-used *)
  mutable e_next : entry option; (* toward least-recently-used *)
}

type shard = {
  root : node;
  mutable mru : entry option;
  mutable lru : entry option;
  mutable s_hits : int;
  mutable s_misses : int;
  mutable s_evictions : int;
  mutable s_admitted : int;
  mutable s_rejected : int;
  mutable s_bytes : int;
  mutable s_entries : int;
  (* index 0 unused; index [bucket depth] for depth >= 1 *)
  sd_hits : int array;
  sd_misses : int array;
  sd_evictions : int array;
  sd_entries : int array;
  sd_bytes : int array;
}

type t = {
  budget : int; (* bytes; 0 = disabled *)
  admit_depth : int;  (* depths <= this admitted unconditionally *)
  admit_visits : int; (* deeper: admitted from this many store attempts *)
  bytes : int Atomic.t;
  shards : shard array Atomic.t; (* index = participant; grown on demand *)
  grow : Mutex.t;
}

type depth_stats = {
  d_depth : int; (** bucket: 1 .. {!depth_buckets}, the last aggregates deeper *)
  d_hits : int;
  d_misses : int;
  d_evictions : int;
  d_entries : int;
  d_bytes : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  admitted : int;
  rejected : int;
  bytes : int;
  entries : int;
  per_depth : depth_stats list;
}

let mk_node ?parent ~depth key =
  { key; depth; parent; children = Hashtbl.create 4; entry = None; visits = 0 }

let mk_shard () =
  {
    root = mk_node ~depth:(-1) 0;
    mru = None;
    lru = None;
    s_hits = 0;
    s_misses = 0;
    s_evictions = 0;
    s_admitted = 0;
    s_rejected = 0;
    s_bytes = 0;
    s_entries = 0;
    sd_hits = Array.make (depth_buckets + 1) 0;
    sd_misses = Array.make (depth_buckets + 1) 0;
    sd_evictions = Array.make (depth_buckets + 1) 0;
    sd_entries = Array.make (depth_buckets + 1) 0;
    sd_bytes = Array.make (depth_buckets + 1) 0;
  }

let default_admit_depth = 4
let default_admit_visits = 2

let create ?(budget_bytes = 64 * 1024 * 1024)
    ?(admit_depth = default_admit_depth)
    ?(admit_visits = default_admit_visits) () =
  {
    budget = max 0 budget_bytes;
    admit_depth = max 1 admit_depth;
    admit_visits = max 1 admit_visits;
    bytes = Atomic.make 0;
    shards = Atomic.make [| mk_shard () |];
    grow = Mutex.create ();
  }

let disabled = create ~budget_bytes:0 ()

let enabled t = t.budget > 0

(* The calling participant's shard; other participants' shards are never
   read — their owner may be mutating them. *)
let shard (t : t) =
  let i = Pool.self () in
  let a = Atomic.get t.shards in
  if i < Array.length a then a.(i)
  else begin
    Mutex.lock t.grow;
    let a = Atomic.get t.shards in
    let a =
      if i < Array.length a then a
      else begin
        let b =
          Array.init (i + 1) (fun j ->
              if j < Array.length a then a.(j) else mk_shard ())
        in
        Atomic.set t.shards b;
        b
      end
    in
    Mutex.unlock t.grow;
    a.(i)
  end

(* --- LRU list maintenance (shard-local) --- *)

let unlink sh e =
  (match e.e_prev with Some p -> p.e_next <- e.e_next | None -> sh.mru <- e.e_next);
  (match e.e_next with Some n -> n.e_prev <- e.e_prev | None -> sh.lru <- e.e_prev);
  e.e_prev <- None;
  e.e_next <- None

let push_front sh e =
  e.e_next <- sh.mru;
  e.e_prev <- None;
  (match sh.mru with Some m -> m.e_prev <- Some e | None -> sh.lru <- Some e);
  sh.mru <- Some e

let touch sh e =
  unlink sh e;
  push_front sh e

(* --- counter helpers --- *)

let count_hit sh depth =
  let b = bucket depth in
  sh.s_hits <- sh.s_hits + 1;
  sh.sd_hits.(b) <- sh.sd_hits.(b) + 1;
  Obs.count "prefix_cache.hits" 1;
  Obs.count hit_names.(b) 1

(* A miss is attributed to the depth at which the chain broke: the first
   prefix depth with no entry.  Diagnosable per depth — an eviction storm
   at depth d shows up as misses at d. *)
let count_miss sh broke_at =
  let b = bucket broke_at in
  sh.s_misses <- sh.s_misses + 1;
  sh.sd_misses.(b) <- sh.sd_misses.(b) + 1;
  Obs.count "prefix_cache.misses" 1;
  Obs.count miss_names.(b) 1

(* --- trie walk --- *)

let child node key = Hashtbl.find_opt node.children key

let drop_one (t : t) sh node e =
  node.entry <- None;
  unlink sh e;
  let b = bucket node.depth in
  sh.s_bytes <- sh.s_bytes - e.e_bytes;
  sh.s_entries <- sh.s_entries - 1;
  sh.sd_bytes.(b) <- sh.sd_bytes.(b) - e.e_bytes;
  sh.sd_entries.(b) <- sh.sd_entries.(b) - 1;
  sh.s_evictions <- sh.s_evictions + 1;
  sh.sd_evictions.(b) <- sh.sd_evictions.(b) + 1;
  ignore (Atomic.fetch_and_add t.bytes (-e.e_bytes));
  Obs.count "prefix_cache.evictions" 1;
  Obs.count eviction_names.(b) 1

(* Evicting an entry orphans every entry below it (they could no longer be
   materialized), so the whole entry subtree goes with it — children
   first, each counted as its own eviction.  Entry-less children cannot
   have entried descendants (the store-time invariant), so the recursion
   stops at them. *)
let rec drop_subtree (t : t) sh node =
  Hashtbl.iter
    (fun _ c -> if c.entry <> None then drop_subtree t sh c)
    node.children;
  match node.entry with
  | None -> ()
  | Some e -> drop_one t sh node e

let evict_to_budget (t : t) sh =
  let continue = ref true in
  while !continue && Atomic.get t.bytes > t.budget do
    match sh.lru with
    | None -> continue := false (* own shard dry; others own their bytes *)
    | Some e -> drop_subtree t sh e.e_node
  done

(* --- chain walk + materialization --- *)

(* Deepest contiguous run of entries along [uids]: returns the depth
   reached and the entries, deepest first.  Contiguity equals
   materializability by the store-time invariant. *)
let deepest_chain sh ~scope uids =
  match child sh.root scope with
  | None -> (0, [])
  | Some scope_node ->
      let rec go node depth chain uids =
        match uids with
        | [] -> (depth, chain)
        | uid :: rest -> (
            match child node uid with
            | Some c -> (
                match c.entry with
                | Some e -> go c (depth + 1) (e :: chain) rest
                | None -> (depth, chain))
            | None -> (depth, chain))
      in
      go scope_node 0 [] uids

(* Copy the anchor and replay the suffixes down the chain.  Touch order is
   deepest-first so the anchor ends up most-recently-used: it is the most
   load-bearing entry (evicting it takes the whole subtree). *)
let materialize sh ~name chain_deepest_first =
  List.iter (touch sh) chain_deepest_first;
  let chain = List.rev chain_deepest_first in
  match chain with
  | { e_data = Anchor o; _ } :: suffixes ->
      let main = Lobj.copy ~name o in
      List.iter
        (fun e ->
          match e.e_data with
          | Suffix d -> Lobj.replay main d
          | Anchor _ -> assert false (* anchors only at depth 1 *))
        suffixes;
      Lobj.set_name main name;
      main
  | _ -> assert false (* non-empty chains start at a depth-1 anchor *)

(* --- public operations --- *)

let find (t : t) ~scope ~name uids =
  if t.budget = 0 then None
  else begin
    let sh = shard t in
    let want = List.length uids in
    let depth, chain = deepest_chain sh ~scope uids in
    if depth = want && depth > 0 then begin
      count_hit sh depth;
      Some (materialize sh ~name chain)
    end
    else begin
      count_miss sh (depth + 1);
      None
    end
  end

let find_longest (t : t) ~scope ~name uids =
  if t.budget = 0 then None
  else begin
    let sh = shard t in
    let depth, chain = deepest_chain sh ~scope uids in
    if depth > 0 then begin
      count_hit sh depth;
      Some (depth, materialize sh ~name chain)
    end
    else begin
      count_miss sh 1;
      None
    end
  end

(* Bound peek for branch-and-bound: the stored partial bounding box
   without materializing the entry (no counters, no LRU touch). *)
let peek_bbox (t : t) ~scope uids =
  if t.budget = 0 then None
  else begin
    let sh = shard t in
    let rec walk node uids =
      match uids with
      | [] -> node.entry
      | uid :: rest -> (
          match child node uid with Some c -> walk c rest | None -> None)
    in
    match child sh.root scope with
    | None -> None
    | Some n -> (
        match walk n uids with Some e -> Some e.e_bbox | None -> None)
  end

(* Walk (and create) the trie path for [uids], bumping the target node's
   visit count — the admission signal. *)
let visit_node sh ~scope uids =
  let node =
    List.fold_left
      (fun n uid ->
        match child n uid with
        | Some c -> c
        | None ->
            let c = mk_node ~parent:n ~depth:(n.depth + 1) uid in
            Hashtbl.replace n.children uid c;
            c)
      (match child sh.root scope with
      | Some s -> s
      | None ->
          let s = mk_node ~parent:sh.root ~depth:0 scope in
          Hashtbl.replace sh.root.children scope s;
          s)
      uids
  in
  node.visits <- node.visits + 1;
  node

let note_visit (t : t) ~scope uids =
  if t.budget > 0 && uids <> [] then begin
    let sh = shard t in
    ignore (visit_node sh ~scope uids);
    sh.s_rejected <- sh.s_rejected + 1;
    Obs.count "prefix_cache.rejected" 1
  end

let store (t : t) ~scope uids ~delta obj =
  if t.budget = 0 || uids = [] then false
  else begin
    let sh = shard t in
    let node = visit_node sh ~scope uids in
    match node.entry with
    | Some e ->
        touch sh e (* identical by determinism; just refresh *);
        true
    | None ->
        let depth = node.depth in
        (* Chain invariant: a deeper entry needs its parent's entry live
           (otherwise it could never be materialized).  Optimizer stores
           run shallow-to-deep, so the parent is normally present; it is
           absent exactly when the parent itself was rejected or evicted —
           then the child is rejected too. *)
        let parent_live =
          depth = 1
          || (match node.parent with Some p -> p.entry <> None | None -> false)
        in
        let admit =
          parent_live
          && (depth <= t.admit_depth || node.visits >= t.admit_visits)
        in
        if not admit then begin
          sh.s_rejected <- sh.s_rejected + 1;
          Obs.count "prefix_cache.rejected" 1;
          false
        end
        else begin
          let data, bytes =
            if depth = 1 then
              let c = Lobj.copy obj in
              (Anchor c, Lobj.approx_bytes c)
            else
              let d = delta () in
              (Suffix d, Lobj.delta_bytes d)
          in
          let e =
            {
              e_data = data;
              e_bbox = Lobj.bbox obj;
              e_bytes = bytes;
              e_node = node;
              e_prev = None;
              e_next = None;
            }
          in
          node.entry <- Some e;
          push_front sh e;
          let b = bucket depth in
          sh.s_bytes <- sh.s_bytes + bytes;
          sh.s_entries <- sh.s_entries + 1;
          sh.s_admitted <- sh.s_admitted + 1;
          sh.sd_bytes.(b) <- sh.sd_bytes.(b) + bytes;
          sh.sd_entries.(b) <- sh.sd_entries.(b) + 1;
          ignore (Atomic.fetch_and_add t.bytes bytes);
          Obs.count "prefix_cache.bytes" bytes;
          Obs.count "prefix_cache.admitted" 1;
          evict_to_budget t sh;
          (* Eviction under a tiny budget may reclaim the entry (or an
             ancestor) we just pushed; report what is actually live. *)
          node.entry <> None
        end
  end

let stats (t : t) =
  let shards = Atomic.get t.shards in
  let sum f = Array.fold_left (fun acc sh -> acc + f sh) 0 shards in
  let sum_d f b = Array.fold_left (fun acc sh -> acc + (f sh).(b)) 0 shards in
  let per_depth =
    List.init depth_buckets (fun i ->
        let b = i + 1 in
        {
          d_depth = b;
          d_hits = sum_d (fun sh -> sh.sd_hits) b;
          d_misses = sum_d (fun sh -> sh.sd_misses) b;
          d_evictions = sum_d (fun sh -> sh.sd_evictions) b;
          d_entries = sum_d (fun sh -> sh.sd_entries) b;
          d_bytes = sum_d (fun sh -> sh.sd_bytes) b;
        })
  in
  {
    hits = sum (fun sh -> sh.s_hits);
    misses = sum (fun sh -> sh.s_misses);
    evictions = sum (fun sh -> sh.s_evictions);
    admitted = sum (fun sh -> sh.s_admitted);
    rejected = sum (fun sh -> sh.s_rejected);
    bytes = sum (fun sh -> sh.s_bytes);
    entries = sum (fun sh -> sh.s_entries);
    per_depth;
  }

(* --- the process-wide default (amgen --cache-mb / --cache-admit-…) --- *)

let default_budget_mb = Atomic.make 64
let default_admit_depth_v = Atomic.make default_admit_depth
let default_admit_visits_v = Atomic.make default_admit_visits

let default_cache : t option Atomic.t = Atomic.make None

let default () =
  match Atomic.get default_cache with
  | Some c -> c
  | None ->
      let c =
        match Atomic.get default_budget_mb with
        | 0 -> disabled
        | mb ->
            create ~budget_bytes:(mb * 1024 * 1024)
              ~admit_depth:(Atomic.get default_admit_depth_v)
              ~admit_visits:(Atomic.get default_admit_visits_v) ()
      in
      (* First-use race: both candidates are empty, either wins. *)
      if Atomic.compare_and_set default_cache None (Some c) then c
      else Option.get (Atomic.get default_cache)

let set_default_budget_mb mb =
  Atomic.set default_budget_mb (max 0 mb);
  Atomic.set default_cache None

let set_default_policy ?admit_depth ?admit_visits () =
  Option.iter
    (fun d -> Atomic.set default_admit_depth_v (max 1 d))
    admit_depth;
  Option.iter
    (fun v -> Atomic.set default_admit_visits_v (max 1 v))
    admit_visits;
  Atomic.set default_cache None

(* --- serving metrics registration -------------------------------------

   Callback-backed instruments over the process default cache, for the
   serve daemon's scrape surface.  Callbacks run [stats (default ())] at
   snapshot time, so they follow budget/policy resets that swap the
   default instance out.  Registration is idempotent (re-registering
   replaces the callbacks). *)

module Metrics = Amg_obs.Metrics

let register_metrics () =
  let st f () = f (stats (default ())) in
  Metrics.counter_fn "prefix_cache.hits" (st (fun s -> s.hits));
  Metrics.counter_fn "prefix_cache.misses" (st (fun s -> s.misses));
  Metrics.counter_fn "prefix_cache.evictions" (st (fun s -> s.evictions));
  Metrics.counter_fn "prefix_cache.admitted" (st (fun s -> s.admitted));
  Metrics.counter_fn "prefix_cache.rejected" (st (fun s -> s.rejected));
  Metrics.gauge_fn "prefix_cache.bytes" (st (fun s -> float_of_int s.bytes));
  Metrics.gauge_fn "prefix_cache.entries" (st (fun s -> float_of_int s.entries));
  for b = 1 to depth_buckets do
    let label =
      if b = depth_buckets then Printf.sprintf "%d+" b else string_of_int b
    in
    Metrics.gauge_fn ~labels:[ ("depth", label) ] "prefix_cache.hit_rate"
      (st (fun s ->
           match List.find_opt (fun d -> d.d_depth = b) s.per_depth with
           | None -> 0.
           | Some d ->
               let total = d.d_hits + d.d_misses in
               if total = 0 then 0.
               else float_of_int d.d_hits /. float_of_int total))
  done
