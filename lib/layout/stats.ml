module Rect = Amg_geometry.Rect
module Region = Amg_geometry.Region
module Units = Amg_geometry.Units

type t = {
  object_name : string;
  shape_count : int;
  port_count : int;
  bbox : Rect.t option;
  bbox_area_um2 : float;
  layer_areas : (string * float) list; (* union area per layer, um^2 *)
  density : float;                     (* union of all shapes / bbox *)
}

let um2 nm2 = float_of_int nm2 /. 1.0e6

let of_lobj obj =
  let bbox = Lobj.bbox obj in
  let bbox_area = match bbox with None -> 0 | Some r -> Rect.area r in
  let layer_areas =
    List.map
      (fun layer -> (layer, um2 (Region.area (Lobj.rects_on obj layer))))
      (Lobj.layers obj)
  in
  {
    object_name = Lobj.name obj;
    shape_count = Lobj.shape_count obj;
    port_count = List.length (Lobj.ports obj);
    bbox;
    bbox_area_um2 = um2 bbox_area;
    layer_areas;
    density =
      (if bbox_area = 0 then 0.
       else um2 (Lobj.union_area obj) /. um2 bbox_area);
  }

(* Area-weighted x-centroid offset from the bounding-box centre, in um.
   Analog modules (differential pairs, current mirrors) want mass
   balanced about the vertical axis; this is the cheapest layout-derived
   proxy for that matching quality.  Double counting where shapes overlap
   is deliberate — stacked conducting mass counts for the side it sits
   on — and keeps the metric a pure per-shape sum, independent of
   decomposition order. *)
let symmetry_error_um obj =
  match Lobj.bbox obj with
  | None -> 0.
  | Some bb ->
      let mass = ref 0. and moment = ref 0. in
      List.iter
        (fun (s : Shape.t) ->
          let a = float_of_int (Rect.area s.Shape.rect) in
          mass := !mass +. a;
          moment := !moment +. (a *. float_of_int (Rect.center_x s.Shape.rect)))
        (Lobj.shapes obj);
      if !mass = 0. then 0.
      else
        let centroid = !moment /. !mass in
        Float.abs (centroid -. float_of_int (Rect.center_x bb)) /. 1000.

let pp ppf s =
  Fmt.pf ppf "@[<v>%s: %d shapes, %d ports@," s.object_name s.shape_count
    s.port_count;
  (match s.bbox with
  | Some r ->
      Fmt.pf ppf "  bbox %a (%.1f x %.1f um, %.1f um2)@," Rect.pp_um r
        (Units.to_um (Rect.width r))
        (Units.to_um (Rect.height r))
        s.bbox_area_um2
  | None -> Fmt.pf ppf "  (empty)@,");
  Fmt.pf ppf "  density %.2f@," s.density;
  List.iter
    (fun (layer, a) -> Fmt.pf ppf "  %-10s %10.2f um2@," layer a)
    s.layer_areas;
  Fmt.pf ppf "@]"
