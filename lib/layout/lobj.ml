module Rect = Amg_geometry.Rect
module Region = Amg_geometry.Region
module Transform = Amg_geometry.Transform
module Sindex = Amg_geometry.Sindex
module Rules = Amg_tech.Rules

type array_spec = {
  cut_layer : string;
  container_ids : int list;
  array_net : string option;
}

(* Delta-log journal behind [snapshot]/[restore].  While at least one
   snapshot is live every store mutation pushes its inverse; [restore]
   pops the log back to the snapshot's length and re-installs the scalar
   fields (ports, arrays, name, next_id, layer order) captured in the
   snapshot record — those are immutable lists, so capturing them is O(1)
   and sharing them is safe.  Chosen over a copy-on-write generation on
   the store: a snapshot costs nothing and a restore costs O(changes
   since), while a COW generation taxes every read with a generation
   check (see DESIGN.md §10 for the measured comparison). *)
type undo =
  | U_enter of Shape.t                    (* drop the newest slot *)
  | U_remove of int * Shape.t             (* slot: re-install the shape *)
  | U_replace of int * Shape.t * Shape.t  (* slot, old, new *)
  | U_translate of int * int              (* dx, dy: shift back *)
  | U_new_layer of string                 (* drop the fresh layer index *)

(* Indexed shape store.  Shapes live in [slots] in insertion order ([None]
   marks a removed shape); [id2slot] gives O(1) find/replace/remove, and
   [by_layer] keeps one spatial index per layer for the candidate queries
   of the compactor, the DRC and the extractor.  Because ids are handed
   out monotonically (and [absorb] bumps absorbed ids past every existing
   one), ascending id order IS insertion order — layer queries sort by id
   to restore it.

   Bounding boxes are cached: [bb] is the whole-object hull, [layer_bb]
   the per-layer hulls.  A cache entry is either valid or absent (dirty);
   growth (add, pure-growth replace, absorb) extends valid entries in
   place, removal and shrinking invalidate, translation shifts. *)
type t = {
  mutable name : string;
  mutable slots : Shape.t option array;
  mutable n_slots : int; (* used prefix of [slots] *)
  mutable live : int;    (* slots holding a shape *)
  mutable id2slot : (int, int) Hashtbl.t;
  mutable by_layer : (string, Sindex.t) Hashtbl.t;
  mutable layer_order : string list; (* first-use order, never reordered *)
  mutable bb : Rect.t option option; (* None = dirty *)
  mutable layer_bb : (string, Rect.t option) Hashtbl.t; (* absent = dirty *)
  mutable ports : Port.t list;
  mutable arrays : (int * array_spec) list;
  mutable next_id : int;
  mutable journal : undo list; (* most recent first; only while snaps > 0 *)
  mutable j_len : int;
  mutable snaps : int;         (* live snapshots *)
}

type snapshot = {
  s_owner : t;
  s_len : int;
  s_name : string;
  s_ports : Port.t list;
  s_arrays : (int * array_spec) list;
  s_next_id : int;
  s_layer_order : string list;
  mutable s_live : bool;
}

let journaling t = t.snaps > 0

let push t u =
  if journaling t then begin
    t.journal <- u :: t.journal;
    t.j_len <- t.j_len + 1
  end

let create name =
  {
    name;
    slots = Array.make 8 None;
    n_slots = 0;
    live = 0;
    id2slot = Hashtbl.create 16;
    by_layer = Hashtbl.create 8;
    layer_order = [];
    bb = Some None;
    layer_bb = Hashtbl.create 8;
    ports = [];
    arrays = [];
    next_id = 0;
    journal = [];
    j_len = 0;
    snaps = 0;
  }

let name t = t.name
let set_name t n = t.name <- n

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

(* --- cache maintenance --- *)

let dirty_layer t layer =
  Hashtbl.remove t.layer_bb layer;
  t.bb <- None

let extend_caches t layer rect =
  (match Hashtbl.find_opt t.layer_bb layer with
  | Some (Some b) -> Hashtbl.replace t.layer_bb layer (Some (Rect.hull b rect))
  | Some None -> Hashtbl.replace t.layer_bb layer (Some rect)
  | None -> ());
  match t.bb with
  | Some (Some b) -> t.bb <- Some (Some (Rect.hull b rect))
  | Some None -> t.bb <- Some (Some rect)
  | None -> ()

let sindex_of t layer =
  match Hashtbl.find_opt t.by_layer layer with
  | Some ix -> ix
  | None ->
      let ix = Sindex.create () in
      Hashtbl.replace t.by_layer layer ix;
      t.layer_order <- t.layer_order @ [ layer ];
      push t (U_new_layer layer);
      ix

(* --- store primitives --- *)

let ensure_capacity t =
  if t.n_slots = Array.length t.slots then begin
    let ns = Array.make (max 8 (2 * Array.length t.slots)) None in
    Array.blit t.slots 0 ns 0 t.n_slots;
    t.slots <- ns
  end

let enter t (s : Shape.t) =
  ensure_capacity t;
  t.slots.(t.n_slots) <- Some s;
  Hashtbl.replace t.id2slot s.id t.n_slots;
  t.n_slots <- t.n_slots + 1;
  t.live <- t.live + 1;
  Sindex.insert (sindex_of t s.layer) s.id s.rect;
  extend_caches t s.layer s.rect;
  push t (U_enter s)

(* Squeeze out removed slots once more than half the prefix is dead, so
   iteration stays proportional to the live count.  Suppressed while a
   snapshot is live: the journal records slot indices, and the append-only
   discipline is what lets [restore] unwind enters by truncation. *)
let maybe_squeeze t =
  if (not (journaling t)) && t.n_slots > 16 && 2 * t.live < t.n_slots then begin
    let w = ref 0 in
    for r = 0 to t.n_slots - 1 do
      match t.slots.(r) with
      | Some s ->
          t.slots.(!w) <- Some s;
          Hashtbl.replace t.id2slot s.id !w;
          incr w
      | None -> ()
    done;
    Array.fill t.slots !w (t.n_slots - !w) None;
    t.n_slots <- !w
  end

let add_shape t ~layer ~rect ?net ?sides ?keep_clear ?origin () =
  let s = Shape.make ~id:(fresh_id t) ~layer ~rect ?net ?sides ?keep_clear ?origin () in
  enter t s;
  s

let shapes t =
  let out = ref [] in
  for i = t.n_slots - 1 downto 0 do
    match t.slots.(i) with Some s -> out := s :: !out | None -> ()
  done;
  !out

let shape_count t = t.live

let find t id =
  match Hashtbl.find_opt t.id2slot id with
  | None -> None
  | Some slot -> t.slots.(slot)

let find_exn t id =
  match find t id with
  | Some s -> s
  | None -> Fmt.invalid_arg "Lobj.find_exn: no shape %d in %s" id t.name

let replace t (s : Shape.t) =
  match Hashtbl.find_opt t.id2slot s.Shape.id with
  | None -> Fmt.invalid_arg "Lobj.replace: no shape %d in %s" s.Shape.id t.name
  | Some slot ->
      let old = Option.get t.slots.(slot) in
      push t (U_replace (slot, old, s));
      t.slots.(slot) <- Some s;
      if not (String.equal old.Shape.layer s.layer) then begin
        Sindex.remove (sindex_of t old.layer) old.id;
        Sindex.insert (sindex_of t s.layer) s.id s.rect;
        dirty_layer t old.layer;
        dirty_layer t s.layer;
        extend_caches t s.layer s.rect
      end
      else if not (Rect.equal old.Shape.rect s.rect) then begin
        Sindex.insert (sindex_of t s.layer) s.id s.rect;
        if Rect.contains_rect s.rect old.Shape.rect then
          (* Pure growth keeps every cached hull valid — just extend. *)
          extend_caches t s.layer s.rect
        else dirty_layer t s.layer
      end

let remove t id =
  match Hashtbl.find_opt t.id2slot id with
  | None -> ()
  | Some slot ->
      (match t.slots.(slot) with
      | Some s ->
          Sindex.remove (sindex_of t s.layer) s.id;
          dirty_layer t s.layer;
          push t (U_remove (slot, s))
      | None -> ());
      t.slots.(slot) <- None;
      Hashtbl.remove t.id2slot id;
      t.live <- t.live - 1;
      maybe_squeeze t

let shapes_on t layer =
  match Hashtbl.find_opt t.by_layer layer with
  | None -> []
  | Some ix ->
      let ids = ref [] in
      Sindex.iter ix (fun id _ -> ids := id :: !ids);
      List.sort compare !ids |> List.map (find_exn t)

let near t ~layer rect ~margin =
  match Hashtbl.find_opt t.by_layer layer with
  | None -> []
  | Some ix ->
      (* Query ids arrive ascending, which is insertion order. *)
      List.map (find_exn t) (Sindex.query ix rect ~margin)

let shapes_on_net t net =
  List.filter (fun (s : Shape.t) -> s.net = Some net) (shapes t)

let rects t = List.map (fun (s : Shape.t) -> s.rect) (shapes t)

let rects_on t layer = List.map (fun (s : Shape.t) -> s.rect) (shapes_on t layer)

let bbox_on t layer =
  match Hashtbl.find_opt t.layer_bb layer with
  | Some b -> b
  | None ->
      let b =
        match Hashtbl.find_opt t.by_layer layer with
        | None -> None
        | Some ix -> Sindex.bbox ix
      in
      Hashtbl.replace t.layer_bb layer b;
      b

let bbox t =
  match t.bb with
  | Some b -> b
  | None ->
      let b =
        Hashtbl.fold
          (fun layer ix acc ->
            if Sindex.cardinal ix = 0 then acc
            else
              match (bbox_on t layer, acc) with
              | None, acc -> acc
              | Some r, None -> Some r
              | Some r, Some h -> Some (Rect.hull h r))
          t.by_layer None
      in
      t.bb <- Some b;
      b

let bbox_exn t =
  match bbox t with
  | Some r -> r
  | None -> Fmt.invalid_arg "Lobj.bbox_exn: %s is empty" t.name

let bbox_area t = match bbox t with None -> 0 | Some r -> Rect.area r

let union_area t = Region.area (rects t)

let layers t =
  List.filter
    (fun layer ->
      match Hashtbl.find_opt t.by_layer layer with
      | Some ix -> Sindex.cardinal ix > 0
      | None -> false)
    t.layer_order

let nets t =
  List.fold_left
    (fun acc (s : Shape.t) ->
      match s.net with
      | Some n when not (List.mem n acc) -> n :: acc
      | _ -> acc)
    [] (shapes t)
  |> List.rev

let map_shapes_in_place t f =
  for i = 0 to t.n_slots - 1 do
    match t.slots.(i) with
    | Some s -> t.slots.(i) <- Some (f s)
    | None -> ()
  done

let translate t ~dx ~dy =
  push t (U_translate (dx, dy));
  map_shapes_in_place t (fun s -> Shape.translate s ~dx ~dy);
  t.ports <- List.map (fun p -> Port.translate p ~dx ~dy) t.ports;
  Hashtbl.iter (fun _ ix -> Sindex.translate_all ix ~dx ~dy) t.by_layer;
  t.bb <- Option.map (Option.map (fun r -> Rect.translate r ~dx ~dy)) t.bb;
  Hashtbl.filter_map_inplace
    (fun _ b -> Some (Option.map (fun r -> Rect.translate r ~dx ~dy) b))
    t.layer_bb

let no_snapshots t op =
  if journaling t then
    Fmt.invalid_arg "Lobj.%s: %s has a live snapshot (not journalable)" op t.name

(* Arbitrary orientations invalidate the binning wholesale: rebuild. *)
let transform t tr =
  no_snapshots t "transform";
  map_shapes_in_place t (fun s -> Shape.transform s tr);
  t.ports <- List.map (fun p -> Port.transform p tr) t.ports;
  Hashtbl.reset t.by_layer;
  Hashtbl.reset t.layer_bb;
  t.bb <- None;
  for i = 0 to t.n_slots - 1 do
    match t.slots.(i) with
    | Some s -> Sindex.insert (sindex_of t s.Shape.layer) s.id s.rect
    | None -> ()
  done

(* Structural copy — the paper's "trans2 = trans1" (§2.5).  Shape, port and
   array values are immutable and may be shared, but every mutable piece of
   the store (slot array, id table, spatial indexes, caches) is duplicated,
   so no mutation of either object can ever reach the other. *)
let copy ?name t =
  let by_layer = Hashtbl.create (Hashtbl.length t.by_layer) in
  Hashtbl.iter (fun l ix -> Hashtbl.replace by_layer l (Sindex.copy ix)) t.by_layer;
  {
    name = Option.value ~default:t.name name;
    slots = Array.copy t.slots;
    n_slots = t.n_slots;
    live = t.live;
    id2slot = Hashtbl.copy t.id2slot;
    by_layer;
    layer_order = t.layer_order;
    bb = t.bb;
    layer_bb = Hashtbl.copy t.layer_bb;
    ports = t.ports;
    arrays = t.arrays;
    next_id = t.next_id;
    (* Snapshots name a specific store; the copy starts a fresh history. *)
    journal = [];
    j_len = 0;
    snaps = 0;
  }

(* --- snapshot / restore --- *)

let snapshot t =
  t.snaps <- t.snaps + 1;
  {
    s_owner = t;
    s_len = t.j_len;
    s_name = t.name;
    s_ports = t.ports;
    s_arrays = t.arrays;
    s_next_id = t.next_id;
    s_layer_order = t.layer_order;
    s_live = true;
  }

let undo t = function
  | U_enter s ->
      (* Enters append and squeezing is suppressed, so in reverse journal
         order the enter being undone always owns the last used slot. *)
      Sindex.remove (sindex_of t s.Shape.layer) s.id;
      Hashtbl.remove t.id2slot s.id;
      t.n_slots <- t.n_slots - 1;
      t.slots.(t.n_slots) <- None;
      t.live <- t.live - 1
  | U_remove (slot, s) ->
      t.slots.(slot) <- Some s;
      Hashtbl.replace t.id2slot s.id slot;
      t.live <- t.live + 1;
      Sindex.insert (sindex_of t s.layer) s.id s.rect
  | U_replace (slot, old, s) ->
      t.slots.(slot) <- Some old;
      if not (String.equal old.Shape.layer s.Shape.layer) then
        Sindex.remove (sindex_of t s.layer) s.id;
      Sindex.insert (sindex_of t old.layer) old.id old.rect
  | U_translate (dx, dy) ->
      map_shapes_in_place t (fun s -> Shape.translate s ~dx:(-dx) ~dy:(-dy));
      Hashtbl.iter (fun _ ix -> Sindex.translate_all ix ~dx:(-dx) ~dy:(-dy)) t.by_layer
  | U_new_layer layer ->
      (* Every insert into the fresh index came after its creation, so it
         has already been unwound; the index is empty. *)
      Hashtbl.remove t.by_layer layer;
      Hashtbl.remove t.layer_bb layer

let restore t snap =
  if snap.s_owner != t then
    Fmt.invalid_arg "Lobj.restore: snapshot belongs to another object";
  if (not snap.s_live) || snap.s_len > t.j_len then
    Fmt.invalid_arg "Lobj.restore: snapshot of %s is no longer valid" t.name;
  while t.j_len > snap.s_len do
    (match t.journal with
    | u :: rest ->
        t.journal <- rest;
        undo t u
    | [] -> assert false);
    t.j_len <- t.j_len - 1
  done;
  t.name <- snap.s_name;
  t.ports <- snap.s_ports;
  t.arrays <- snap.s_arrays;
  t.next_id <- snap.s_next_id;
  t.layer_order <- snap.s_layer_order;
  (* The unwind retraces geometry exactly but not the incremental cache
     extensions: drop the hull caches and let the next read re-derive them
     from the (restored) indexes. *)
  t.bb <- None;
  Hashtbl.reset t.layer_bb

let release t snap =
  if snap.s_owner != t then
    Fmt.invalid_arg "Lobj.release: snapshot belongs to another object";
  if snap.s_live then begin
    snap.s_live <- false;
    t.snaps <- t.snaps - 1;
    if t.snaps = 0 then begin
      t.journal <- [];
      t.j_len <- 0
    end
  end

let with_snapshot t f =
  let snap = snapshot t in
  Fun.protect ~finally:(fun () -> release t snap)
    (fun () ->
      try f ()
      with e ->
        restore t snap;
        raise e)

(* --- journal deltas ---

   The journal records inverses; read forward (oldest first) each inverse
   names exactly the store mutation that produced it, so a journal window
   doubles as a redo log.  A [delta] is such a window plus the scalar
   fields at its end — applying it to an object in the window's start
   state reproduces the end state.  This is what the prefix cache stores
   per trie node: the steps between a parent prefix and its child, instead
   of a full copy of the child layout. *)

type delta_op =
  | D_enter of Shape.t
  | D_remove of int
  | D_replace of Shape.t
  | D_translate of int * int
  | D_new_layer of string

type delta = {
  d_ops : delta_op array; (* oldest first *)
  d_name : string;
  d_ports : Port.t list;
  d_arrays : (int * array_spec) list;
  d_next_id : int;
  d_layer_order : string list;
}

type mark = int

let mark t =
  if not (journaling t) then
    Fmt.invalid_arg "Lobj.mark: %s has no live snapshot (not journaling)"
      t.name;
  t.j_len

let forward_op = function
  | U_enter s -> D_enter s
  | U_remove (_, s) -> D_remove s.Shape.id
  | U_replace (_, _, s) -> D_replace s
  | U_translate (dx, dy) -> D_translate (dx, dy)
  | U_new_layer layer -> D_new_layer layer

let delta_since t m =
  if m > t.j_len then
    Fmt.invalid_arg "Lobj.delta_since: stale mark on %s" t.name;
  let n = t.j_len - m in
  let ops = Array.make n (D_translate (0, 0)) in
  (* The journal is newest-first; fill the array back to front. *)
  let rec fill src k =
    if k >= 0 then
      match src with
      | u :: rest ->
          ops.(k) <- forward_op u;
          fill rest (k - 1)
      | [] -> assert false
  in
  fill t.journal (n - 1);
  {
    d_ops = ops;
    d_name = t.name;
    d_ports = t.ports;
    d_arrays = t.arrays;
    d_next_id = t.next_id;
    d_layer_order = t.layer_order;
  }

(* Replaying an enter re-enters the recorded shape verbatim (recorded ids,
   not fresh ones), so the replayed store is observably identical to the
   original build: same shapes, same ids, same insertion order, same
   spatial-index answers.  Slot packing may differ (squeezing was
   suppressed during the journaled build) but slot indexes are not
   observable.  The scalar fields are installed afterwards, overwriting
   whatever the ops touched in passing. *)
let replay t d =
  Array.iter
    (function
      | D_enter s -> enter t s
      | D_remove id -> remove t id
      | D_replace s -> replace t s
      | D_translate (dx, dy) -> translate t ~dx ~dy
      | D_new_layer layer -> ignore (sindex_of t layer))
    d.d_ops;
  t.name <- d.d_name;
  t.ports <- d.d_ports;
  t.arrays <- d.d_arrays;
  t.next_id <- d.d_next_id;
  t.layer_order <- d.d_layer_order

(* Rough heap footprint of a delta for cache byte budgets: the op array
   spine plus the shapes retained by enter/replace ops; the scalar lists
   are shared immutable values, count their spines only. *)
let delta_bytes d =
  let shape_bytes =
    Array.fold_left
      (fun acc -> function
        | D_enter _ | D_replace _ -> acc + 200
        | D_remove _ | D_translate _ | D_new_layer _ -> acc)
      0 d.d_ops
  in
  256
  + (48 * Array.length d.d_ops)
  + shape_bytes
  + (16 * List.length d.d_ports)
  + (16 * List.length d.d_arrays)

let delta_length d = Array.length d.d_ops

(* Rough heap footprint of the store, for the prefix cache's byte budget.
   Per live shape: the record (~9 fields + a rect), one id-table entry and
   a handful of spatial-index bin slots; per dead slot one word; plus the
   fixed tables.  An estimate — eviction needs proportionality, not
   exactness. *)
let approx_bytes t =
  2048 + (320 * t.live) + (16 * (t.n_slots - t.live))
  + (160 * List.length t.ports)
  + (96 * List.length t.arrays)
  + (512 * Hashtbl.length t.by_layer)

let add_port t ~name ~net ~layer ~rect =
  let p = Port.make ~name ~net ~layer ~rect in
  t.ports <- t.ports @ [ p ];
  p

let ports t = t.ports

let port t name = List.find_opt (fun (p : Port.t) -> String.equal p.name name) t.ports

let port_exn t pname =
  match port t pname with
  | Some p -> p
  | None -> Fmt.invalid_arg "Lobj.port_exn: no port %s in %s" pname t.name

let remove_port t pname =
  t.ports <- List.filter (fun (p : Port.t) -> not (String.equal p.name pname)) t.ports

let rename_net t ~from_ ~to_ =
  no_snapshots t "rename_net";
  map_shapes_in_place t (fun (s : Shape.t) ->
      if s.net = Some from_ then Shape.with_net s (Some to_) else s);
  t.ports <-
    List.map
      (fun (p : Port.t) ->
        if String.equal p.net from_ then { p with net = to_ } else p)
      t.ports;
  t.arrays <-
    List.map
      (fun (id, spec) ->
        if spec.array_net = Some from_ then (id, { spec with array_net = Some to_ })
        else (id, spec))
      t.arrays

(* Prefix every net of the object, giving instance-local net names. *)
let qualify_nets t prefix =
  no_snapshots t "qualify_nets";
  let q n = prefix ^ "." ^ n in
  map_shapes_in_place t (fun (s : Shape.t) -> Shape.with_net s (Option.map q s.net));
  t.ports <- List.map (fun (p : Port.t) -> { p with net = q p.net }) t.ports;
  t.arrays <-
    List.map
      (fun (id, spec) -> (id, { spec with array_net = Option.map q spec.array_net }))
      t.arrays

(* --- Derived cut arrays (§2.2 / §2.3) --- *)

let register_array t ~cut_layer ~container_ids ?net () =
  let id = fresh_id t in
  t.arrays <- t.arrays @ [ (id, { cut_layer; container_ids; array_net = net }) ];
  id

let array_specs t = t.arrays

let arrays_of_container t id =
  List.filter_map
    (fun (aid, spec) -> if List.mem id spec.container_ids then Some aid else None)
    t.arrays

let array_member_count t array_id =
  let n = ref 0 in
  for i = 0 to t.n_slots - 1 do
    match t.slots.(i) with
    | Some s when s.Shape.origin = Shape.Array_member array_id -> incr n
    | _ -> ()
  done;
  !n

(* Is this shape a container of some registered array?  If so the compactor
   must not shrink it below the one-cut minimum. *)
let array_cut_layers_of_container t id =
  List.filter_map
    (fun (_, spec) ->
      if List.mem id spec.container_ids then Some spec.cut_layer else None)
    t.arrays

let rederive t rules =
  Amg_robust.Inject.(probe Contact_rebuild);
  Amg_obs.Obs.count "lobj.contact_array_rebuilds" (List.length t.arrays);
  List.iter
    (fun (array_id, spec) ->
      let members = ref [] in
      for i = 0 to t.n_slots - 1 do
        match t.slots.(i) with
        | Some s when s.Shape.origin = Shape.Array_member array_id ->
            members := s.Shape.id :: !members
        | _ -> ()
      done;
      List.iter (remove t) !members;
      let containers =
        List.map
          (fun id ->
            let s = find_exn t id in
            (s.Shape.layer, s.Shape.rect))
          spec.container_ids
      in
      let cuts = Derive.cut_array rules ~containers ~cut_layer:spec.cut_layer in
      List.iter
        (fun rect ->
          ignore
            (add_shape t ~layer:spec.cut_layer ~rect ?net:spec.array_net
               ~origin:(Shape.Array_member array_id) ()))
        cuts)
    t.arrays

(* Merge [src] into [t], renumbering ids; returns the id offset applied. *)
let absorb t src =
  let offset = t.next_id in
  let bump (s : Shape.t) =
    let origin =
      match s.origin with
      | Shape.User -> Shape.User
      | Shape.Array_member a -> Shape.Array_member (a + offset)
    in
    { s with id = s.id + offset; origin }
  in
  for i = 0 to src.n_slots - 1 do
    match src.slots.(i) with
    | Some s -> enter t (bump s)
    | None -> ()
  done;
  t.ports <- t.ports @ src.ports;
  t.arrays <-
    t.arrays
    @ List.map
        (fun (id, spec) ->
          ( id + offset,
            { spec with container_ids = List.map (fun i -> i + offset) spec.container_ids } ))
        src.arrays;
  t.next_id <- t.next_id + src.next_id;
  offset

let pp ppf t =
  Fmt.pf ppf "@[<v>object %s (%d shapes, %d ports)@," t.name t.live
    (List.length t.ports);
  List.iter
    (fun (s : Shape.t) ->
      Fmt.pf ppf "  %3d %-8s %a %a@," s.id s.layer Rect.pp_um s.rect
        Fmt.(option string)
        s.net)
    (shapes t);
  List.iter
    (fun (p : Port.t) ->
      Fmt.pf ppf "  port %s net=%s %s %a@," p.name p.net p.layer Rect.pp_um p.rect)
    t.ports;
  Fmt.pf ppf "@]"
