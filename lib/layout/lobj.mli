(** Layout objects — the paper's "objects".

    A layout object is the mutable data structure a module generator builds:
    shapes, named ports, and registered cut arrays whose members are derived
    from container shapes.  Complex modules are constructed by compacting
    objects one at a time into a growing main object (§2.3).

    Shapes are held in an indexed store: an id table gives O(1)
    {!find}/{!replace}/{!remove}, a per-layer spatial index backs the
    {!near} candidate query, and the bounding boxes of {!bbox}/{!bbox_on}
    are cached incrementally (extended on growth, invalidated on removal or
    shrinking, shifted on translation) instead of being re-hulled per call.
    Iteration order everywhere remains insertion order. *)

type t

val create : string -> t
val name : t -> string
val set_name : t -> string -> unit

val add_shape :
  t ->
  layer:string ->
  rect:Amg_geometry.Rect.t ->
  ?net:string ->
  ?sides:Edge.sides ->
  ?keep_clear:bool ->
  ?origin:Shape.origin ->
  unit ->
  Shape.t
(** Appends a shape with a fresh id and returns it. *)

val shapes : t -> Shape.t list
(** In insertion order (drawing order). *)

val shape_count : t -> int

val find : t -> int -> Shape.t option
val find_exn : t -> int -> Shape.t

val replace : t -> Shape.t -> unit
(** Replace the shape with the same id.
    @raise Invalid_argument when the id is absent. *)

val remove : t -> int -> unit

val shapes_on : t -> string -> Shape.t list

val near : t -> layer:string -> Amg_geometry.Rect.t -> margin:int -> Shape.t list
(** Candidate query: every shape on [layer] whose closed rectangle
    intersects the window inflated by [margin] on all sides, in insertion
    order.  Served by the per-layer spatial index, so the cost is
    proportional to the candidates, not to the object.  Callers derive
    [margin] from the technology's spacing rule for the layer pair at hand
    (see {!Amg_tech.Rules.space_or_zero}); the result is a superset of the
    shapes any rule of that range can relate to the window. *)

val shapes_on_net : t -> string -> Shape.t list
val rects : t -> Amg_geometry.Rect.t list
val rects_on : t -> string -> Amg_geometry.Rect.t list

val bbox : t -> Amg_geometry.Rect.t option
val bbox_exn : t -> Amg_geometry.Rect.t
val bbox_on : t -> string -> Amg_geometry.Rect.t option

val bbox_area : t -> int
(** Area of the bounding box — the optimizer's primary rating term. *)

val union_area : t -> int
(** Exact union area of all shapes. *)

val layers : t -> string list
(** Layers present, in first-use order. *)

val nets : t -> string list

val translate : t -> dx:int -> dy:int -> unit
val transform : t -> Amg_geometry.Transform.t -> unit

val copy : ?name:string -> t -> t
(** Structural copy — the paper's ["trans2 = trans1"] object copy (§2.5).
    Immutable shape/port/array values are shared, but every mutable part of
    the store (slots, id table, spatial indexes, caches) is duplicated, so
    mutating either object never affects the other.  Not a deep copy of the
    shape values themselves — they never mutate.  The copy starts with a
    fresh (empty) snapshot history. *)

(** {2 Snapshot / restore}

    A snapshot marks a point in the object's mutation history; [restore]
    rewinds the object to it byte-for-byte.  Taking one is O(1): while at
    least one snapshot is live, every store mutation (shape enter, remove,
    replace, translate) pushes its inverse onto a delta log, and the scalar
    fields (name, ports, arrays, ids, layer order) are captured as shared
    immutable values.  Restoring costs O(mutations since the snapshot) and
    may be repeated — the engine behind backtracking and the optimizer's
    incremental search (see DESIGN.md §10).

    Discipline: snapshots are released LIFO ({!with_snapshot} enforces it);
    while any snapshot is live the whole-object rewrites {!transform},
    {!rename_net} and {!qualify_nets} raise [Invalid_argument] — they are
    not journalable. *)

type snapshot

val snapshot : t -> snapshot
(** O(1); starts journaling if this is the first live snapshot. *)

val restore : t -> snapshot -> unit
(** Rewind to the snapshot point.  The layout — shapes, ports, arrays,
    indexes, ids, name — is byte-identical to the state at {!snapshot}
    time; bounding-box caches are re-derived lazily.  The snapshot stays
    valid, so a search can restore to the same point repeatedly.
    @raise Invalid_argument on another object's or a released snapshot. *)

val release : t -> snapshot -> unit
(** Drop the snapshot (idempotent).  When the last live snapshot goes, the
    delta log is discarded.  Restoring to an *older* still-live snapshot
    invalidates younger ones — release youngest-first. *)

val with_snapshot : t -> (unit -> 'a) -> 'a
(** [with_snapshot t f] runs [f] under a fresh snapshot, restores on any
    exception, and releases the snapshot either way. *)

(** {2 Journal deltas}

    Read forward, the snapshot journal doubles as a redo log: each inverse
    names exactly the store mutation that produced it.  A {!delta} captures
    a window of that log (plus the scalar fields at its end), and {!replay}
    applies it to another object that is in the window's start state —
    reproducing an observably identical end state: same shapes with the
    same ids in the same insertion order, same ports, arrays, name, layer
    set and spatial-index answers.  The prefix cache stores one delta per
    trie node (the steps between a parent prefix and its child) instead of
    a full layout copy, and materializes a lookup by replaying the delta
    chain from its anchor (see DESIGN.md §11). *)

type mark
(** A position in the journal.  Only meaningful while the snapshot that
    started the journal is live. *)

val mark : t -> mark
(** The current journal position.
    @raise Invalid_argument when no snapshot is live (nothing is being
    journaled, so there is no position to name). *)

type delta

val delta_since : t -> mark -> delta
(** The mutations between [mark] and now, as a replayable forward log,
    plus the current scalar fields.  O(mutations in the window).  The
    shapes inside are shared immutable values; the delta stays valid after
    the journal is dropped.
    @raise Invalid_argument when the journal has been rewound past the
    mark. *)

val replay : t -> delta -> unit
(** Apply the delta's mutations in order, then install its scalar fields.
    The target must be in the state the delta was extracted from (i.e. a
    copy of the object as it stood at the delta's mark) — replaying
    elsewhere is undefined (typically [Invalid_argument] from a missing
    shape id). *)

val delta_bytes : delta -> int
(** Rough heap footprint of the delta, for cache byte budgets. *)

val delta_length : delta -> int
(** Number of store mutations in the delta. *)

val approx_bytes : t -> int
(** Rough heap footprint of the store, for cache byte budgets. *)

val add_port :
  t -> name:string -> net:string -> layer:string -> rect:Amg_geometry.Rect.t -> Port.t

val ports : t -> Port.t list
val port : t -> string -> Port.t option
val port_exn : t -> string -> Port.t
val remove_port : t -> string -> unit

val rename_net : t -> from_:string -> to_:string -> unit
(** Connect a sub-module's formal net to an actual net of the parent. *)

val qualify_nets : t -> string -> unit
(** Prefix every net with ["prefix."] to make instance-local names. *)

type array_spec = {
  cut_layer : string;
  container_ids : int list;
  array_net : string option;
}

val register_array :
  t -> cut_layer:string -> container_ids:int list -> ?net:string -> unit -> int
(** Declare a derived cut array bounded by the given container shapes;
    returns the array id.  Members carry [Shape.Array_member id]. *)

val array_specs : t -> (int * array_spec) list

val arrays_of_container : t -> int -> int list
(** Ids of the registered arrays using shape [id] as a container. *)

val array_member_count : t -> int -> int
(** Current number of members of the given array. *)

val array_cut_layers_of_container : t -> int -> string list
(** Cut layers of every registered array that uses shape [id] as a
    container; non-empty means variable-edge shrinking must preserve the
    one-cut minimum extent. *)

val rederive : t -> Amg_tech.Rules.t -> unit
(** Recompute all array members from the current container rectangles —
    the automatic rebuild of §2.3. *)

val absorb : t -> t -> int
(** [absorb t src] appends [src]'s shapes, ports and arrays into [t],
    renumbering ids; returns the id offset applied to [src]'s ids. *)

val pp : Format.formatter -> t -> unit
