(** Layout objects — the paper's "objects".

    A layout object is the mutable data structure a module generator builds:
    shapes, named ports, and registered cut arrays whose members are derived
    from container shapes.  Complex modules are constructed by compacting
    objects one at a time into a growing main object (§2.3).

    Shapes are held in an indexed store: an id table gives O(1)
    {!find}/{!replace}/{!remove}, a per-layer spatial index backs the
    {!near} candidate query, and the bounding boxes of {!bbox}/{!bbox_on}
    are cached incrementally (extended on growth, invalidated on removal or
    shrinking, shifted on translation) instead of being re-hulled per call.
    Iteration order everywhere remains insertion order. *)

type t

val create : string -> t
val name : t -> string
val set_name : t -> string -> unit

val add_shape :
  t ->
  layer:string ->
  rect:Amg_geometry.Rect.t ->
  ?net:string ->
  ?sides:Edge.sides ->
  ?keep_clear:bool ->
  ?origin:Shape.origin ->
  unit ->
  Shape.t
(** Appends a shape with a fresh id and returns it. *)

val shapes : t -> Shape.t list
(** In insertion order (drawing order). *)

val shape_count : t -> int

val find : t -> int -> Shape.t option
val find_exn : t -> int -> Shape.t

val replace : t -> Shape.t -> unit
(** Replace the shape with the same id.
    @raise Invalid_argument when the id is absent. *)

val remove : t -> int -> unit

val shapes_on : t -> string -> Shape.t list

val near : t -> layer:string -> Amg_geometry.Rect.t -> margin:int -> Shape.t list
(** Candidate query: every shape on [layer] whose closed rectangle
    intersects the window inflated by [margin] on all sides, in insertion
    order.  Served by the per-layer spatial index, so the cost is
    proportional to the candidates, not to the object.  Callers derive
    [margin] from the technology's spacing rule for the layer pair at hand
    (see {!Amg_tech.Rules.space_or_zero}); the result is a superset of the
    shapes any rule of that range can relate to the window. *)

val shapes_on_net : t -> string -> Shape.t list
val rects : t -> Amg_geometry.Rect.t list
val rects_on : t -> string -> Amg_geometry.Rect.t list

val bbox : t -> Amg_geometry.Rect.t option
val bbox_exn : t -> Amg_geometry.Rect.t
val bbox_on : t -> string -> Amg_geometry.Rect.t option

val bbox_area : t -> int
(** Area of the bounding box — the optimizer's primary rating term. *)

val union_area : t -> int
(** Exact union area of all shapes. *)

val layers : t -> string list
(** Layers present, in first-use order. *)

val nets : t -> string list

val translate : t -> dx:int -> dy:int -> unit
val transform : t -> Amg_geometry.Transform.t -> unit

val copy : ?name:string -> t -> t
(** Structural copy — the paper's ["trans2 = trans1"] object copy (§2.5).
    Immutable shape/port/array values are shared, but every mutable part of
    the store (slots, id table, spatial indexes, caches) is duplicated, so
    mutating either object never affects the other.  Not a deep copy of the
    shape values themselves — they never mutate. *)

val add_port :
  t -> name:string -> net:string -> layer:string -> rect:Amg_geometry.Rect.t -> Port.t

val ports : t -> Port.t list
val port : t -> string -> Port.t option
val port_exn : t -> string -> Port.t
val remove_port : t -> string -> unit

val rename_net : t -> from_:string -> to_:string -> unit
(** Connect a sub-module's formal net to an actual net of the parent. *)

val qualify_nets : t -> string -> unit
(** Prefix every net with ["prefix."] to make instance-local names. *)

type array_spec = {
  cut_layer : string;
  container_ids : int list;
  array_net : string option;
}

val register_array :
  t -> cut_layer:string -> container_ids:int list -> ?net:string -> unit -> int
(** Declare a derived cut array bounded by the given container shapes;
    returns the array id.  Members carry [Shape.Array_member id]. *)

val array_specs : t -> (int * array_spec) list

val arrays_of_container : t -> int -> int list
(** Ids of the registered arrays using shape [id] as a container. *)

val array_member_count : t -> int -> int
(** Current number of members of the given array. *)

val array_cut_layers_of_container : t -> int -> string list
(** Cut layers of every registered array that uses shape [id] as a
    container; non-empty means variable-edge shrinking must preserve the
    one-cut minimum extent. *)

val rederive : t -> Amg_tech.Rules.t -> unit
(** Recompute all array members from the current container rectangles —
    the automatic rebuild of §2.3. *)

val absorb : t -> t -> int
(** [absorb t src] appends [src]'s shapes, ports and arrays into [t],
    renumbering ids; returns the id offset applied to [src]'s ids. *)

val pp : Format.formatter -> t -> unit
