(** Layout statistics: size, per-layer utilisation, density. *)

type t = {
  object_name : string;
  shape_count : int;
  port_count : int;
  bbox : Amg_geometry.Rect.t option;
  bbox_area_um2 : float;
  layer_areas : (string * float) list;
      (** union area per layer in um², in first-use layer order *)
  density : float;
      (** union area of all shapes divided by bounding-box area *)
}

val of_lobj : Lobj.t -> t

val symmetry_error_um : Lobj.t -> float
(** Area-weighted x-centroid offset from the bounding-box centre, in um —
    a layout-derived proxy for matching quality (0 = mass balanced about
    the vertical axis).  Overlapping shapes count their full area each;
    0. for an empty object. *)

val pp : Format.formatter -> t -> unit
