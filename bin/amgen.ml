(* amgen — command-line front end of the module generator environment.

     amgen build  FILE.amg ENTITY [-p k=v]... [--svg out.svg] [--cif out.cif]
     amgen check  FILE.amg ENTITY [-p k=v]...      run the DRC
     amgen tech   [--out FILE]                     dump the built-in deck
     amgen amp    [--svg out.svg]                  build the BiCMOS amplifier
     amgen trace-lint FILE.json                    validate a --trace file
     amgen serve  [--socket PATH]                  run the generator daemon
     amgen request ENTITY [-p k=v]...              query a running daemon
     amgen metrics [--json]                        scrape a daemon's registry
     amgen health                                  probe a daemon's liveness
     amgen store  stat|verify|compact FILE         inspect a result store
     amgen sweep  SPEC.json [-o out.csv]           batch parameter-grid sweep

   `build --optimize MODE --store FILE` reuses (and feeds) a durable
   result store: a crash-safe log of best compaction orders, shared with
   `amgen serve --store`.

   Every pipeline subcommand takes --stats (instrumentation summary) and
   --trace FILE (Chrome trace-event JSON); `build` additionally takes
   --explain (per-placement binding-constraint audit), --optimize
   (compaction-order search) and the --max-time/--max-evals budgets.

   Exit codes: 0 success, 1 diagnostics (errors reported), 2 usage,
   3 budget exhausted — a valid best-so-far layout was emitted. *)

module Env = Amg_core.Env
module Lobj = Amg_layout.Lobj
module Obs = Amg_obs.Obs
module Diag = Amg_robust.Diag
module Policy = Amg_robust.Policy
module Inject = Amg_robust.Inject
module Budget = Amg_robust.Budget
module Optimize = Amg_core.Optimize
module Store = Amg_store.Store

open Cmdliner

let exit_ok = 0
let exit_diag = 1
let exit_usage = 2
let exit_degraded = 3

(* --- the diagnostics boundary --- *)

(* Map every escaping exception to a structured diagnostic; asynchronous
   exceptions (Out_of_memory, Sys.Break) stay fatal in Diag.guard. *)
let convert_exn = function
  | Env.Rejected msg ->
      Some
        (Diag.v Diag.Layout ~code:"layout.rejected"
           ~hint:"every topology alternative failed a design-rule check; \
                  relax the parameters or add a fallback variant"
           msg)
  | Inject.Fault (site, hit) -> Some (Inject.to_diag site hit)
  | Sys_error msg -> Some (Diag.v Diag.Cli ~code:"cli.io-error" msg)
  | Failure msg -> Some (Diag.v Diag.Cli ~code:"cli.error" msg)
  | e ->
      Some
        (Diag.v Diag.Internal ~code:"internal.uncaught"
           ~hint:"this is a bug in amgen; please report it"
           (Printexc.to_string e))

(* Run a command body under the failure policy and the fault-injection
   harness; collect reported and escaping diagnostics, print them to
   stderr, optionally write the JSON report, and compute the exit code. *)
let run_guarded ?(mode = Policy.Strict) ?inject ?diag_json f =
  Policy.reset ();
  Policy.set_mode mode;
  let armed =
    match inject with
    | None ->
        Inject.disarm ();
        Ok ()
    | Some spec -> (
        match Inject.parse_spec spec with
        | Ok sched ->
            Inject.arm sched;
            Ok ()
        | Error msg -> Error msg)
  in
  match armed with
  | Error msg ->
      Fmt.epr "amgen: bad --inject spec: %s@." msg;
      exit_usage
  | Ok () ->
      let result = Diag.guard ~convert:convert_exn f in
      Inject.disarm ();
      let reported = Policy.drain () in
      Policy.reset ();
      let diags, code =
        match result with
        | Ok code -> (reported, code)
        | Error d -> (reported @ [ d ], exit_diag)
      in
      (* A permissive run that skipped placements emitted a valid but
         incomplete layout: error diagnostics force a non-zero exit even
         when the body itself succeeded. *)
      let code =
        if
          code = exit_ok
          && List.exists (fun d -> d.Diag.severity = Diag.Error) diags
        then exit_diag
        else code
      in
      List.iter (fun d -> Fmt.epr "%a@." Diag.pp d) diags;
      Option.iter
        (fun path ->
          let oc = open_out path in
          output_string oc
            (Diag.list_to_json ~degraded:(code = exit_degraded) diags);
          output_char oc '\n';
          close_out oc;
          Fmt.pr "wrote %s@." path)
        diag_json;
      code

(* --- common arguments --- *)

let tech_arg =
  let doc = "Technology description file (default: built-in generic 1um BiCMOS)." in
  Arg.(value & opt (some file) None & info [ "t"; "tech" ] ~docv:"FILE" ~doc)

let jobs_arg =
  let doc =
    "Number of OCaml domains the optimization-mode searches (order \
     permutations, branch-and-bound, local search, topology variants) may \
     use.  Defaults to the machine's recommended domain count; results are \
     identical for every value."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let set_jobs jobs = Option.iter Amg_parallel.Pool.set_default_domains jobs

(* Validating int convs: rejections surface as cmdliner parse errors,
   which [main] maps to the usage exit code. *)
let int_at_least lo what =
  let parse s =
    match int_of_string_opt s with
    | Some v when v >= lo -> Ok v
    | Some v -> Error (`Msg (Fmt.str "%s must be >= %d, got %d" what lo v))
    | None -> Error (`Msg (Fmt.str "%s expects an integer, got %s" what s))
  in
  Arg.conv (parse, Format.pp_print_int)

let cache_mb_arg =
  let doc =
    "Byte budget (MiB) of the prefix cache the optimization-mode searches \
     share; already-compacted order prefixes are stored as delta suffixes \
     against their parent prefix and replayed instead of rebuilt.  0 \
     disables the cache; negative values are rejected.  Results are \
     identical for every value — only the search time changes."
  in
  Arg.(value & opt (some (int_at_least 0 "--cache-mb")) None
       & info [ "cache-mb" ] ~docv:"MB" ~doc)

let set_cache_mb mb = Option.iter Amg_core.Prefix_cache.set_default_budget_mb mb

let cache_admit_depth_arg =
  let doc =
    "Prefix depth up to which the cache admits every order prefix \
     unconditionally; deeper prefixes must be visited \
     $(b,--cache-admit-visits) times first.  Admission affects memory and \
     time only, never results."
  in
  Arg.(value & opt (some (int_at_least 1 "--cache-admit-depth")) None
       & info [ "cache-admit-depth" ] ~docv:"D" ~doc)

let cache_admit_visits_arg =
  let doc =
    "Visit count a prefix deeper than $(b,--cache-admit-depth) needs \
     before the cache stores it."
  in
  Arg.(value & opt (some (int_at_least 1 "--cache-admit-visits")) None
       & info [ "cache-admit-visits" ] ~docv:"K" ~doc)

let set_cache_policy admit_depth admit_visits =
  if admit_depth <> None || admit_visits <> None then
    Amg_core.Prefix_cache.set_default_policy ?admit_depth ?admit_visits ()

let stats_arg =
  Arg.(value & flag
       & info [ "stats" ]
           ~doc:"Print the instrumentation summary (span timings, counters, \
                 histograms) after the run.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record the run as a Chrome trace-event JSON file (load in \
                 about://tracing or Perfetto; validate with trace-lint).")

let mode_arg =
  let strict =
    Arg.(value & flag
         & info [ "strict" ]
             ~doc:"Fail on the first placement error (the default).")
  in
  let permissive =
    Arg.(value & flag
         & info [ "permissive" ]
             ~doc:"Degrade instead of failing: a placement error retries the \
                   opposite direction, then skips the object and reports a \
                   diagnostic.")
  in
  let combine strict permissive =
    if strict && permissive then
      `Error (true, "--strict and --permissive are mutually exclusive")
    else `Ok (if permissive then Policy.Permissive else Policy.Strict)
  in
  Term.(ret (const combine $ strict $ permissive))

let inject_arg =
  Arg.(value & opt (some string) None
       & info [ "inject" ] ~docv:"SPEC"
           ~doc:"Deterministic fault injection: $(b,seed:N) (optionally \
                 $(b,seed:N:FAULTS)) or a comma list of SITE@HIT pairs like \
                 $(b,rule-lookup@3,pool-task@1).  Sites: rule-lookup, \
                 contact-rebuild, sindex-query, pool-task, drc-check.")

let diag_json_arg =
  Arg.(value & opt (some string) None
       & info [ "diag-json" ] ~docv:"FILE"
           ~doc:"Write all diagnostics of the run as a JSON report \
                 ($(b,version)/$(b,degraded)/$(b,diagnostics)).")

let max_time_arg =
  Arg.(value & opt (some float) None
       & info [ "max-time" ] ~docv:"SEC"
           ~doc:"Wall-clock budget for the optimization search; on overrun \
                 the best layout found so far is emitted and amgen exits 3.  \
                 Implies --optimize orders unless --optimize is given.")

let max_evals_arg =
  Arg.(value & opt (some int) None
       & info [ "max-evals" ] ~docv:"N"
           ~doc:"Evaluation budget (candidate layout rebuilds) for the \
                 optimization search; deterministic for every --jobs value.  \
                 Implies --optimize orders unless --optimize is given.")

(* Run [f] with instrumentation enabled when any sink asked for it, and
   flush the sinks before returning — in particular before a caller's
   non-zero exit on DRC violations.  Recorded data stays readable after
   [disable] (the `--explain` table is printed by the caller). *)
let with_obs ?(explain = false) ~stats ~trace f =
  let on = stats || explain || trace <> None in
  if on then Obs.enable ();
  let finish () =
    if on then begin
      Obs.disable ();
      Option.iter
        (fun path ->
          Amg_obs.Trace.write path;
          Fmt.pr "wrote %s@." path)
        trace;
      if stats then Fmt.pr "%a" Obs.pp_stats ()
    end
  in
  match f () with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e

let env_of_tech = function
  | None -> Env.bicmos ()
  | Some path -> Env.create (Amg_tech.Tech_file.load path)

let params_arg =
  let doc = "Entity parameter, e.g. -p W=10 or -p layer=poly (numbers in um)." in
  Arg.(value & opt_all string [] & info [ "p"; "param" ] ~docv:"K=V" ~doc)

let parse_params params =
  List.map
    (fun kv ->
      match String.index_opt kv '=' with
      | None ->
          Diag.failf Diag.Cli ~code:"cli.bad-param"
            ~hint:"parameters are written -p key=value, e.g. -p W=10"
            "bad parameter %s (expected k=v)" kv
      | Some i ->
          let k = String.sub kv 0 i
          and v = String.sub kv (i + 1) (String.length kv - i - 1) in
          let value =
            match float_of_string_opt v with
            | Some f -> Amg_lang.Value.Num f
            | None -> Amg_lang.Value.Str v
          in
          (k, value))
    params

let svg_arg =
  Arg.(value & opt (some string) None & info [ "svg" ] ~docv:"FILE" ~doc:"Write an SVG rendering.")

let cif_arg =
  Arg.(value & opt (some string) None & info [ "cif" ] ~docv:"FILE" ~doc:"Write a CIF file.")

let gds_arg =
  Arg.(value & opt (some string) None & info [ "gds" ] ~docv:"FILE" ~doc:"Write a GDSII file.")

let ascii_arg =
  Arg.(value & flag & info [ "ascii" ] ~doc:"Print an ASCII-art preview.")

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.amg" ~doc:"Module source file.")

let entity_arg =
  Arg.(required & pos 1 (some string) None & info [] ~docv:"ENTITY" ~doc:"Entity to build.")

let read_file file =
  let ic = open_in file in
  let src = really_input_string ic (in_channel_length ic) in
  close_in ic;
  src

let build_obj tech_file file entity params =
  let env = env_of_tech tech_file in
  let obj =
    Amg_lang.Interp.parse_and_build ~file env (read_file file) entity
      (parse_params params)
  in
  (env, obj)

let emit env obj svg cif gds ascii =
  Fmt.pr "%a@." Amg_layout.Stats.pp (Amg_layout.Stats.of_lobj obj);
  if ascii then begin
    print_string (Amg_layout.Ascii.render ~tech:(Env.tech env) obj);
    List.iter
      (fun (g, l) -> Fmt.pr "  %c = %s@." g l)
      (Amg_layout.Ascii.legend ~tech:(Env.tech env) obj)
  end;
  Option.iter
    (fun path ->
      Amg_layout.Svg.save ~tech:(Env.tech env) obj path;
      Fmt.pr "wrote %s@." path)
    svg;
  Option.iter
    (fun path ->
      Amg_layout.Cif.save ~tech:(Env.tech env) obj path;
      Fmt.pr "wrote %s@." path)
    cif;
  Option.iter
    (fun path ->
      Amg_layout.Gds.save ~tech:(Env.tech env) obj path;
      Fmt.pr "wrote %s@." path)
    gds

(* --- build (with optional compaction-order optimization) --- *)

(* The optimizer replays compacts only; ports are re-derived on the winning
   layout the same way PORT() derives them — as the hull of the port's
   net/layer shapes. *)
let transplant_ports ~from obj =
  List.iter
    (fun (p : Amg_layout.Port.t) ->
      let shapes =
        List.filter
          (fun (s : Amg_layout.Shape.t) -> Amg_layout.Shape.on_layer s p.layer)
          (Lobj.shapes_on_net obj p.net)
      in
      match
        Amg_geometry.Rect.hull_list
          (List.map (fun (s : Amg_layout.Shape.t) -> s.rect) shapes)
      with
      | Some rect ->
          ignore (Lobj.add_port obj ~name:p.name ~net:p.net ~layer:p.layer ~rect)
      | None ->
          Policy.report
            (Diag.v ~severity:Diag.Warning Diag.Optimize
               ~code:"optimize.port-dropped"
               (Fmt.str
                  "port %s: no shapes of net %s on layer %s in the optimized \
                   layout" p.name p.net p.layer)))
    (Lobj.ports from)

let opt_mode_name = function
  | `Orders -> "orders"
  | `Bb -> "bb"
  | `Local -> "local"

let optimize_arg =
  let modes = [ ("orders", `Orders); ("bb", `Bb); ("local", `Local) ] in
  Arg.(value & opt (some (enum modes)) None
       & info [ "optimize" ] ~docv:"MODE"
           ~doc:"Search over compaction orders of the entity's top-level \
                 compacts and emit the best-rated layout: $(b,orders) \
                 (exhaustive), $(b,bb) (branch-and-bound), $(b,local) \
                 (hill climbing).")

(* Replay the recorded steps under the requested search; returns the layout
   to emit and the exit code.  The canonical build is the fallback at every
   turn: not-replayable entities and canonical winners emit the original
   object byte-for-byte. *)
let optimized_build env ~file ~entity ~src ~params ~opt ~max_time ~max_evals
    ?store () =
  let obj, record =
    Amg_lang.Interp.parse_and_build_recorded ~file env src entity params
  in
  match record with
  | Error why ->
      Policy.report
        (Diag.v ~severity:Diag.Warning Diag.Optimize
           ~code:"optimize.not-replayable"
           ~hint:"the entity must perform at least two top-level compacts \
                  and draw no shapes between or after them"
           (Fmt.str "%s: cannot reorder compacts (%s); emitting the \
                     canonical build" entity why));
      (obj, exit_ok)
  | Ok { Amg_lang.Interp.base; steps } ->
      let budget =
        match (max_time, max_evals) with
        | None, None -> None
        | deadline, max_evals -> Some (Budget.create ?deadline ?max_evals ())
      in
      let best, rating, order =
        match opt with
        | `Orders ->
            Optimize.optimize env ~name:entity ~base ?budget ?store steps
        | `Bb ->
            let o, r, ord, _nodes =
              Optimize.optimize_bb env ~name:entity ~base ?budget ?store steps
            in
            (o, r, ord)
        | `Local ->
            let o, r, ord, _evals =
              Optimize.optimize_local env ~name:entity ~base ?budget ?store
                steps
            in
            (o, r, ord)
      in
      let degraded =
        match budget with Some b -> Budget.degraded b | None -> false
      in
      let canonical_won =
        List.length order = List.length steps && List.for_all2 ( == ) order steps
      in
      Fmt.pr "optimized %s (%s): rating %g over %d compacts%s%s@." entity
        (opt_mode_name opt) rating (List.length steps)
        (if canonical_won then ", canonical order kept" else "")
        (if degraded then ", budget exhausted (best-so-far)" else "");
      if degraded then
        Policy.report
          (Diag.v ~severity:Diag.Warning Diag.Optimize ~code:"optimize.degraded"
             ~hint:"raise --max-time/--max-evals to search further; the \
                    emitted layout is valid but possibly not the optimum"
             (Fmt.str "%s: search stopped by the budget after %s" entity
                (match budget with
                | Some b -> Fmt.str "%d evaluations" (Budget.spent b)
                | None -> "?")));
      let final =
        if canonical_won then obj
        else begin
          transplant_ports ~from:obj best;
          best
        end
      in
      (final, if degraded then exit_degraded else exit_ok)

(* Durable result store: only strict, fault-free runs may feed it (a
   permissive or injected run can rate orders against degraded layouts),
   so under --permissive/--inject the flag downgrades to a warning.  The
   key is restart-stable: tech fingerprint + entity + parameter values —
   [Optimize] appends the search-mode component itself. *)
let with_store ~mode ~inject ~env ~entity ~params store_path f =
  match store_path with
  | None -> f None
  | Some path when mode <> Policy.Strict || inject <> None ->
      Policy.report
        (Diag.v ~severity:Diag.Warning Diag.Store ~code:"store.disabled"
           ~hint:"drop --permissive/--inject to reuse and feed the store"
           (Fmt.str "%s: result store disabled (stored orders must come from \
                     strict, fault-free runs)" path));
      f None
  | Some path ->
      let st, diags = Store.open_ path in
      List.iter Policy.report diags;
      let key =
        Store.signature
          ~tech:
            (Store.tech_fingerprint
               (Amg_tech.Tech_file.to_string (Env.tech env)))
          ~entity
          ~params:
            (List.map
               (fun (k, v) ->
                 ( k,
                   match v with
                   | Amg_lang.Value.Num f -> Store.Num f
                   | Amg_lang.Value.Str s -> Store.Str s
                   (* unreachable from -p parsing; keep the match total *)
                   | Amg_lang.Value.Bool b -> Store.Str (string_of_bool b)
                   | Amg_lang.Value.Obj _ | Amg_lang.Value.Unit ->
                       Store.Str "" ))
               params)
      in
      Fun.protect
        ~finally:(fun () -> Store.close st)
        (fun () -> f (Some (st, key)))

let build_cmd =
  let explain_arg =
    Arg.(value & flag
         & info [ "explain" ]
             ~doc:"After building, print for every compacted object the \
                   binding layer/rule/edge pair that set its final position.")
  in
  let store_arg =
    Arg.(value & opt (some string) None
         & info [ "store" ] ~docv:"FILE"
             ~doc:"Durable result store (created if absent): reuse the best \
                   known compaction order for this (tech, entity, params, \
                   mode) if one is stored, and record a strictly better one \
                   found by this search.  Shared with $(b,amgen serve \
                   --store); inspect with $(b,amgen store).  Only meaningful \
                   with --optimize.")
  in
  let run tech_file jobs cache_mb admit_depth admit_visits file entity params
      svg cif gds ascii stats trace explain optimize max_time max_evals store
      mode inject diag_json =
    set_jobs jobs;
    set_cache_mb cache_mb;
    set_cache_policy admit_depth admit_visits;
    run_guarded ~mode ?inject ?diag_json @@ fun () ->
    let code =
      with_obs ~explain ~stats ~trace (fun () ->
          let env = env_of_tech tech_file in
          let src = read_file file in
          let params = parse_params params in
          let opt =
            match optimize with
            | Some m -> Some m
            | None ->
                if max_time <> None || max_evals <> None then Some `Orders
                else None
          in
          match opt with
          | None ->
              if store <> None then
                Policy.report
                  (Diag.v ~severity:Diag.Warning Diag.Store
                     ~code:"store.unused"
                     ~hint:"add --optimize orders|bb|local"
                     "--store has no effect without --optimize");
              let obj = Amg_lang.Interp.parse_and_build ~file env src entity params in
              emit env obj svg cif gds ascii;
              exit_ok
          | Some opt ->
              with_store ~mode ~inject ~env ~entity ~params store @@ fun store ->
              let obj, code =
                optimized_build env ~file ~entity ~src ~params ~opt ~max_time
                  ~max_evals ?store ()
              in
              emit env obj svg cif gds ascii;
              code)
    in
    if explain then Fmt.pr "%a" Amg_compact.Successive.pp_explain ();
    code
  in
  Cmd.v
    (Cmd.info "build" ~doc:"Build an entity from a module source file.")
    Term.(const run $ tech_arg $ jobs_arg $ cache_mb_arg
          $ cache_admit_depth_arg $ cache_admit_visits_arg $ file_arg
          $ entity_arg $ params_arg $ svg_arg $ cif_arg $ gds_arg $ ascii_arg
          $ stats_arg $ trace_arg $ explain_arg $ optimize_arg $ max_time_arg
          $ max_evals_arg $ store_arg $ mode_arg $ inject_arg $ diag_json_arg)

let diag_of_violation v =
  Diag.v Diag.Drc ~code:"drc.violation" (Amg_drc.Violation.describe v)

let check_cmd =
  let latchup_arg =
    Arg.(value & flag
         & info [ "latchup" ]
             ~doc:"Also run the latch-up cover check (needs substrate taps; \
                   meaningful for complete cells, not bare modules).")
  in
  let run tech_file jobs file entity params latchup stats trace mode inject
      diag_json =
    set_jobs jobs;
    run_guarded ~mode ?inject ?diag_json @@ fun () ->
    let vios =
      with_obs ~stats ~trace (fun () ->
          let env, obj = build_obj tech_file file entity params in
          let checks =
            let open Amg_drc.Checker in
            [ Widths; Spacings; Enclosures; Extensions ]
            @ (if latchup then [ Latch_up ] else [])
          in
          let vios = Amg_drc.Checker.run ~checks ~tech:(Env.tech env) obj in
          Fmt.pr "%a" Amg_drc.Violation.pp_report vios;
          vios)
    in
    List.iter (fun v -> Policy.report (diag_of_violation v)) vios;
    if vios <> [] then exit_diag else exit_ok
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Build an entity and run the design-rule checker.")
    Term.(const run $ tech_arg $ jobs_arg $ file_arg $ entity_arg $ params_arg
          $ latchup_arg $ stats_arg $ trace_arg $ mode_arg $ inject_arg
          $ diag_json_arg)

let tech_cmd =
  let out =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc:"Output file.")
  in
  let lint =
    Arg.(value & flag
         & info [ "lint" ]
             ~doc:"Run the deck consistency lint (on --tech FILE or the \
                   built-in deck) and exit non-zero on errors.")
  in
  let run tech_file out lint_flag diag_json =
    run_guarded ?diag_json @@ fun () ->
    if lint_flag then begin
      let tech =
        match tech_file with
        | None -> Amg_tech.Bicmos1u.get ()
        | Some path -> Amg_tech.Tech_file.load path
      in
      let issues = Amg_tech.Lint.check tech in
      if issues = [] then begin
        Fmt.pr "%s: deck is clean@." (Amg_tech.Technology.name tech);
        exit_ok
      end
      else begin
        List.iter (fun i -> Fmt.pr "%a@." Amg_tech.Lint.pp_issue i) issues;
        List.iter (fun d -> Policy.report d)
          (Amg_tech.Lint.to_diags ?file:tech_file issues);
        if Amg_tech.Lint.errors issues <> [] then exit_diag else exit_ok
      end
    end
    else begin
      (match out with
      | None -> print_string Amg_tech.Bicmos1u.source
      | Some path ->
          let oc = open_out path in
          output_string oc Amg_tech.Bicmos1u.source;
          close_out oc;
          Fmt.pr "wrote %s@." path);
      exit_ok
    end
  in
  Cmd.v
    (Cmd.info "tech"
       ~doc:"Print the built-in technology description file, or lint a deck.")
    Term.(const run $ tech_arg $ out $ lint $ diag_json_arg)

let synth_cmd =
  let sp_file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE.sp" ~doc:"SPICE netlist to synthesise.")
  in
  let hints_arg =
    let doc =
      "Matching hints, e.g. --hints M1:high,M2:high,M3:moderate \
       (low/moderate/high; devices without a hint default to low)."
    in
    Arg.(value & opt (some string) None & info [ "hints" ] ~docv:"SPEC" ~doc)
  in
  let parse_hints = function
    | None -> []
    | Some spec ->
        String.split_on_char ',' spec
        |> List.map (fun kv ->
               match String.split_on_char ':' kv with
               | [ d; "low" ] -> (d, Amg_circuit.Partition.Low)
               | [ d; "moderate" ] -> (d, Amg_circuit.Partition.Moderate)
               | [ d; "high" ] -> (d, Amg_circuit.Partition.High)
               | _ -> failwith ("bad hint " ^ kv ^ " (expected dev:low|moderate|high)"))
  in
  let run tech_file jobs path hints svg cif gds ascii stats trace mode
      diag_json =
    set_jobs jobs;
    run_guarded ~mode ?diag_json @@ fun () ->
    with_obs ~stats ~trace @@ fun () ->
    let env = env_of_tech tech_file in
    let netlist = Amg_circuit.Spice_in.load path in
    let r = Amg_amplifier.Synth.build env ~hints:(parse_hints hints) netlist in
    Fmt.pr "synthesised %s: %.1f x %.1f um (%.0f um2) in %.2f s@."
      (Amg_circuit.Netlist.name netlist)
      r.Amg_amplifier.Synth.width_um r.Amg_amplifier.Synth.height_um
      r.Amg_amplifier.Synth.area_um2 r.Amg_amplifier.Synth.build_time_s;
    List.iter
      (fun (c : Amg_circuit.Partition.cluster) ->
        Fmt.pr "  cluster %-16s %s@." c.Amg_circuit.Partition.cluster_name
          (String.concat "," c.Amg_circuit.Partition.device_names))
      r.Amg_amplifier.Synth.clusters;
    Fmt.pr "routed: %s@."
      (String.concat ", " r.Amg_amplifier.Synth.routing.Amg_route.Global.routed);
    List.iter
      (fun (n, why) -> Fmt.pr "UNROUTED %s: %s@." n why)
      r.Amg_amplifier.Synth.routing.Amg_route.Global.unrouted;
    let vios = Amg_drc.Checker.run ~tech:(Env.tech env) r.Amg_amplifier.Synth.obj in
    Fmt.pr "%a" Amg_drc.Violation.pp_report vios;
    let x = Amg_extract.Devices.extract ~tech:(Env.tech env) r.Amg_amplifier.Synth.obj in
    let lvs = Amg_extract.Compare.run ~golden:netlist x in
    Fmt.pr "%a" Amg_extract.Compare.pp_result lvs;
    emit env r.Amg_amplifier.Synth.obj svg cif gds ascii;
    exit_ok
  in
  Cmd.v
    (Cmd.info "synth"
       ~doc:"Synthesise a layout from a SPICE netlist: partition, generate \
             modules, floorplan, route, check.")
    Term.(const run $ tech_arg $ jobs_arg $ sp_file $ hints_arg $ svg_arg
          $ cif_arg $ gds_arg $ ascii_arg $ stats_arg $ trace_arg $ mode_arg
          $ diag_json_arg)

let fmt_cmd =
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write the formatted source to FILE (default: stdout).")
  in
  let in_place =
    Arg.(value & flag & info [ "i"; "in-place" ] ~doc:"Rewrite the input file.")
  in
  let run file out in_place =
    run_guarded @@ fun () ->
    let src = read_file file in
    let formatted =
      Amg_lang.Printer.program_str (Amg_lang.Parser.parse_program ~file src)
    in
    (match (in_place, out) with
    | true, _ ->
        let oc = open_out file in
        output_string oc formatted;
        close_out oc;
        Fmt.pr "formatted %s@." file
    | false, Some path ->
        let oc = open_out path in
        output_string oc formatted;
        close_out oc;
        Fmt.pr "wrote %s@." path
    | false, None -> print_string formatted);
    exit_ok
  in
  Cmd.v
    (Cmd.info "fmt"
       ~doc:"Reformat a module source file (parse and pretty-print; the \
             output parses back to the identical program).")
    Term.(const run $ file_arg $ out $ in_place)

let gds_cmd =
  let gds_file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE.gds" ~doc:"GDSII stream file to import.")
  in
  let latchup_arg =
    Arg.(value & flag & info [ "latchup" ] ~doc:"Also run the latch-up cover check.")
  in
  let run tech_file path latchup ascii stats trace diag_json =
    run_guarded ?diag_json @@ fun () ->
    let vios =
      with_obs ~stats ~trace (fun () ->
          let env = env_of_tech tech_file in
          let tech = Env.tech env in
          let obj, dropped = Amg_layout.Gds.import_file ~tech path in
          Fmt.pr "%a@." Amg_layout.Stats.pp (Amg_layout.Stats.of_lobj obj);
          List.iter
            (fun g ->
              Fmt.pr "warning: GDS layer %d not in deck %s, boundaries dropped@."
                g (Amg_tech.Technology.name tech))
            dropped;
          if ascii then print_string (Amg_layout.Ascii.render ~tech obj);
          let checks =
            let open Amg_drc.Checker in
            [ Widths; Spacings; Enclosures; Extensions ]
            @ (if latchup then [ Latch_up ] else [])
          in
          let vios = Amg_drc.Checker.run ~checks ~tech obj in
          Fmt.pr "%a" Amg_drc.Violation.pp_report vios;
          vios)
    in
    List.iter (fun v -> Policy.report (diag_of_violation v)) vios;
    if vios <> [] then exit_diag else exit_ok
  in
  Cmd.v
    (Cmd.info "gds"
       ~doc:"Import a GDSII file against the deck and run the design-rule \
             checker on it.")
    Term.(const run $ tech_arg $ gds_file $ latchup_arg $ ascii_arg
          $ stats_arg $ trace_arg $ diag_json_arg)

let netlist_cmd =
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE" ~doc:"Write the SPICE deck to FILE.")
  in
  let run tech_file file entity params out stats trace =
    run_guarded @@ fun () ->
    with_obs ~stats ~trace @@ fun () ->
    let env, obj = build_obj tech_file file entity params in
    let x = Amg_extract.Devices.extract ~tech:(Env.tech env) obj in
    let deck =
      Amg_extract.Spice.of_extracted
        ~title:(Printf.sprintf "extracted from %s (%s)" entity file) x
    in
    (match out with
    | None -> print_string deck
    | Some path ->
        Amg_extract.Spice.write_file path deck;
        Fmt.pr "wrote %s@." path);
    exit_ok
  in
  Cmd.v
    (Cmd.info "netlist"
       ~doc:"Build an entity, extract its devices and print a SPICE deck.")
    Term.(const run $ tech_arg $ file_arg $ entity_arg $ params_arg $ out
          $ stats_arg $ trace_arg)

let amp_cmd =
  let spice_arg =
    Arg.(value & opt (some string) None
         & info [ "spice" ] ~docv:"FILE"
             ~doc:"Extract the finished layout and write a SPICE deck.")
  in
  let run tech_file jobs svg cif gds ascii spice stats trace mode diag_json =
    set_jobs jobs;
    run_guarded ~mode ?diag_json @@ fun () ->
    with_obs ~stats ~trace @@ fun () ->
    let env = env_of_tech tech_file in
    let r = Amg_amplifier.Amplifier.build env in
    Fmt.pr "BiCMOS amplifier: %.1f x %.1f um (%.0f um2), %d shapes, %.2f s@."
      r.Amg_amplifier.Amplifier.width_um r.Amg_amplifier.Amplifier.height_um
      r.Amg_amplifier.Amplifier.area_um2
      (Lobj.shape_count r.Amg_amplifier.Amplifier.obj)
      r.Amg_amplifier.Amplifier.build_time_s;
    let vios = Amg_drc.Checker.run ~tech:(Env.tech env) r.Amg_amplifier.Amplifier.obj in
    Fmt.pr "%a" Amg_drc.Violation.pp_report vios;
    Option.iter
      (fun path ->
        let x =
          Amg_extract.Devices.extract ~tech:(Env.tech env)
            r.Amg_amplifier.Amplifier.obj
        in
        Amg_extract.Spice.write_file path
          (Amg_extract.Spice.of_extracted ~title:"extracted BiCMOS amplifier" x);
        Fmt.pr "wrote %s@." path)
      spice;
    emit env r.Amg_amplifier.Amplifier.obj svg cif gds ascii;
    exit_ok
  in
  Cmd.v
    (Cmd.info "amp" ~doc:"Generate the BiCMOS broad-band amplifier (paper §3).")
    Term.(const run $ tech_arg $ jobs_arg $ svg_arg $ cif_arg $ gds_arg
          $ ascii_arg $ spice_arg $ stats_arg $ trace_arg $ mode_arg
          $ diag_json_arg)

let trace_lint_cmd =
  let trace_file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE.json"
             ~doc:"Chrome trace-event JSON file to validate.")
  in
  let run path =
    run_guarded @@ fun () ->
    match Amg_obs.Trace.validate_file path with
    | Ok s ->
        let open Amg_obs.Trace in
        Fmt.pr "%s: valid trace (%d events, %d threads, %d spans, %d marks%a)@."
          path s.v_events s.v_threads s.v_spans s.v_marks
          (fun ppf -> function
            | Some rid -> Fmt.pf ppf ", request %s" rid
            | None -> ())
          s.v_request_id;
        exit_ok
    | Error msg ->
        Fmt.epr "%s: invalid trace: %s@." path msg;
        exit_diag
  in
  Cmd.v
    (Cmd.info "trace-lint"
       ~doc:"Validate a Chrome trace-event JSON file (as written by --trace): \
             well-formed, monotonic timestamps per thread, matched B/E pairs.")
    Term.(const run $ trace_file)

(* --- store maintenance --- *)

let store_file_arg =
  Arg.(required & pos 0 (some file) None
       & info [] ~docv:"STORE" ~doc:"Result-store file.")

let pp_store_stats ppf (s : Store.stats) =
  Fmt.pf ppf
    "%d keys, %d records, %d bytes%a%a"
    s.Store.entries s.Store.log_records s.Store.log_bytes
    (fun ppf n -> if n > 0 then Fmt.pf ppf ", %d torn-tail truncation(s)" n)
    s.Store.torn_tail_truncations
    (fun ppf n -> if n > 0 then Fmt.pf ppf ", %d corrupt record(s)" n)
    s.Store.corrupt_records

let store_stat_cmd =
  let run path diag_json =
    run_guarded ?diag_json @@ fun () ->
    let s, diags = Store.verify path in
    List.iter Policy.report diags;
    Fmt.pr "%s: %a@." path pp_store_stats s;
    exit_ok
  in
  Cmd.v
    (Cmd.info "stat"
       ~doc:"Print a result store's summary (keys, records, bytes) without \
             modifying it.")
    Term.(const run $ store_file_arg $ diag_json_arg)

let store_verify_cmd =
  let run path diag_json =
    run_guarded ?diag_json @@ fun () ->
    let s, diags = Store.verify path in
    List.iter Policy.report diags;
    if s.Store.corrupt_records > 0 then begin
      Fmt.pr "%s: CORRUPT — %a@." path pp_store_stats s;
      exit_diag
    end
    else begin
      Fmt.pr "%s: ok — %a@." path pp_store_stats s;
      exit_ok
    end
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Scan a result store read-only and exit non-zero if any interior \
             record is corrupt.  A torn tail (crash mid-append) is reported \
             but is not corruption — opening the store repairs it.")
    Term.(const run $ store_file_arg $ diag_json_arg)

let store_compact_cmd =
  let run path diag_json =
    run_guarded ?diag_json @@ fun () ->
    let st, diags = Store.open_ path in
    List.iter Policy.report diags;
    let before = (Store.stats st).Store.log_bytes in
    let ok =
      Fun.protect
        ~finally:(fun () -> Store.close st)
        (fun () ->
          Store.checkpoint st;
          let s = Store.stats st in
          if s.Store.checkpoints > 0 then begin
            Fmt.pr "compacted %s: %d keys, %d -> %d bytes@." path
              s.Store.entries before s.Store.log_bytes;
            true
          end
          else false)
    in
    if ok then exit_ok else exit_diag
  in
  Cmd.v
    (Cmd.info "compact"
       ~doc:"Rewrite a result store as one record per live key (repairing \
             any torn tail on the way) via write-to-temp + fsync + atomic \
             rename.")
    Term.(const run $ store_file_arg $ diag_json_arg)

let store_cmd =
  Cmd.group
    (Cmd.info "store"
       ~doc:"Inspect and maintain a durable result store (as written by \
             $(b,build --store) and $(b,serve --store)).")
    [ store_stat_cmd; store_verify_cmd; store_compact_cmd ]

(* --- sweep (batch parameter-grid exploration) --- *)

(* The sweep engine computes its own per-instance store keys, so the
   handle is passed whole — but the same feeding rule as single builds
   applies: only strict, fault-free runs may consult or feed the store. *)
let with_sweep_store ~mode ~inject store_path f =
  match store_path with
  | None -> f None
  | Some path when mode <> Policy.Strict || inject <> None ->
      Policy.report
        (Diag.v ~severity:Diag.Warning Diag.Store ~code:"store.disabled"
           ~hint:"drop --permissive/--inject to reuse and feed the store"
           (Fmt.str "%s: result store disabled (stored orders must come from \
                     strict, fault-free runs)" path));
      f None
  | Some path ->
      let st, diags = Store.open_ path in
      List.iter Policy.report diags;
      Fun.protect
        ~finally:(fun () -> Store.close st)
        (fun () -> f (Some st))

let sweep_cmd =
  let spec_arg =
    Arg.(value & pos 0 (some file) None
         & info [] ~docv:"SPEC.json"
             ~doc:"Sweep spec file: one entity, one value axis per \
                   parameter, optional search mode (see the README's \
                   \"Sweeping\" section).")
  in
  let library_arg =
    Arg.(value & opt (some file) None
         & info [ "f"; "file" ] ~docv:"FILE.amg"
             ~doc:"Module library the swept entity lives in (default: the \
                   built-in library).")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "out" ] ~docv:"FILE"
             ~doc:"Result file — a one-line JSON schema header, a CSV \
                   column line, then one CSV row per instance, written and \
                   flushed in canonical order so a killed sweep keeps its \
                   completed prefix.  Default: stdout.")
  in
  let chunk_arg =
    Arg.(value & opt (int_at_least 1 "--chunk") 8
         & info [ "chunk" ] ~docv:"N"
             ~doc:"Walk-consecutive instances scheduled as one pool task; \
                   neighbours in a chunk stay on one cache shard.  Results \
                   are identical for every value.")
  in
  let shuffle_arg =
    Arg.(value & flag
         & info [ "shuffle" ]
             ~doc:"Schedule the instances in a deterministically shuffled \
                   order instead of the locality walk (an ablation switch: \
                   rows and ratings are identical, only timings change).")
  in
  let sweep_store_arg =
    Arg.(value & opt (some string) None
         & info [ "store" ] ~docv:"FILE"
             ~doc:"Durable result store (created if absent): every instance \
                   reuses its stored best compaction order and records a \
                   strictly better one it finds.  Shared with $(b,amgen \
                   serve --store).")
  in
  let check_arg =
    Arg.(value & opt (some file) None
         & info [ "check" ] ~docv:"FILE"
             ~doc:"Validate an existing result file against its own schema \
                   header (column arity and cell types) and exit without \
                   running a sweep.")
  in
  let run tech_file jobs cache_mb admit_depth admit_visits library spec out
      chunk shuffle store check stats trace mode inject diag_json =
    match check with
    | Some path -> (
        match Amg_sweep.Sweep.check_file path with
        | Ok rows ->
            Fmt.pr "%s: ok — %d rows@." path rows;
            exit_ok
        | Error e ->
            Fmt.epr "%s: %s@." path e;
            exit_diag)
    | None -> (
        match spec with
        | None ->
            Fmt.epr "amgen: a SPEC.json file is required (or --check FILE)@.";
            exit_usage
        | Some spec_file ->
            set_jobs jobs;
            set_cache_mb cache_mb;
            set_cache_policy admit_depth admit_visits;
            run_guarded ~mode ?inject ?diag_json @@ fun () ->
            with_obs ~stats ~trace @@ fun () ->
            let spec =
              Amg_sweep.Sweep.parse_spec ~file:spec_file (read_file spec_file)
            in
            let env = env_of_tech tech_file in
            let source, source_file =
              match library with
              | None -> (Amg_lang.Stdlib.all, None)
              | Some f -> (read_file f, Some f)
            in
            let domains =
              match jobs with
              | Some j -> j
              | None -> Amg_parallel.Pool.default_domains ()
            in
            let oc = Option.map open_out out in
            let on_line =
              match oc with
              | None ->
                  fun line ->
                    print_string line;
                    print_newline ()
              | Some oc ->
                  fun line ->
                    output_string oc line;
                    output_char oc '\n';
                    flush oc
            in
            let result =
              Fun.protect
                ~finally:(fun () -> Option.iter close_out oc)
                (fun () ->
                  with_sweep_store ~mode ~inject store @@ fun store ->
                  Amg_sweep.Sweep.run ~domains ~chunk ~shuffle ?store
                    ?source_file ~on_line ~env ~source spec)
            in
            Fmt.epr
              "sweep %s (%s): %d rows, %d failures, %d duplicates dropped, \
               %d store hits, %.2f s@."
              spec.Amg_sweep.Sweep.s_entity
              (Amg_sweep.Sweep.mode_to_string spec.Amg_sweep.Sweep.s_mode)
              result.Amg_sweep.Sweep.rows result.Amg_sweep.Sweep.failures
              result.Amg_sweep.Sweep.duplicates
              result.Amg_sweep.Sweep.store_hits
              result.Amg_sweep.Sweep.elapsed_s;
            Option.iter (fun p -> Fmt.epr "wrote %s@." p) out;
            if result.Amg_sweep.Sweep.failures > 0 then exit_degraded
            else exit_ok)
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Expand a parameter-grid spec into its canonical instance list \
             (Gray-code locality walk, duplicates removed), build and \
             order-optimize every instance on the domain pool, and emit one \
             layout-derived metric row per instance into a columnar result \
             file.  Rows are byte-identical for every --jobs, --chunk and \
             --shuffle setting; a partial sweep (some instances failed) \
             exits 3 with per-row diagnostics.")
    Term.(
      const run $ tech_arg $ jobs_arg $ cache_mb_arg $ cache_admit_depth_arg
      $ cache_admit_visits_arg $ library_arg $ spec_arg $ out_arg $ chunk_arg
      $ shuffle_arg $ sweep_store_arg $ check_arg $ stats_arg $ trace_arg
      $ mode_arg $ inject_arg $ diag_json_arg)

let () =
  let doc = "analog module generator environment (DATE'96 reproduction)" in
  let exits =
    [
      Cmd.Exit.info exit_ok ~doc:"on success.";
      Cmd.Exit.info exit_diag ~doc:"on reported diagnostics (errors).";
      Cmd.Exit.info exit_usage ~doc:"on command-line usage errors.";
      Cmd.Exit.info exit_degraded
        ~doc:"when an optimization budget was exhausted and a valid \
              best-so-far layout was emitted.";
    ]
  in
  let info = Cmd.info "amgen" ~version:"1.0.0" ~doc ~exits in
  let code =
    Cmd.eval'
      (Cmd.group info
         [ build_cmd; check_cmd; tech_cmd; netlist_cmd; gds_cmd; fmt_cmd;
           synth_cmd; amp_cmd; trace_lint_cmd; store_cmd; sweep_cmd;
           Amg_serve.Cli.serve_cmd; Amg_serve.Cli.request_cmd;
           Amg_serve.Cli.metrics_cmd; Amg_serve.Cli.health_cmd ])
  in
  exit (if code = Cmd.Exit.cli_error then exit_usage else code)
