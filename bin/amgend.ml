(* amgend — the generator daemon (see `amgend --help`; the same server is
   reachable as `amgen serve`). *)
let () = exit (Amg_serve.Cli.daemon_main ())
